// The sharded conservative engine (DESIGN.md §14): hardened EFD_SHARDS /
// EFD_BENCH_THREADS parsing, advance_to clock discipline, boundary-event
// FIFO and grouping-invariant delivery order on toy cells, campus digest
// equality across shard counts, reset-replay, and the per-shard
// zero-steady-state-allocation pin (via the counting operator new in
// alloc_count.hpp).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "alloc_count.hpp"
#include "src/core/env.hpp"
#include "src/sim/sharded.hpp"
#include "src/sim/simulator.hpp"
#include "src/testbed/campus.hpp"
#include "src/testbed/parallel_runner.hpp"

namespace efd::sim {
namespace {

// --- Environment parsing --------------------------------------------------

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) { ::unsetenv(name); }
  ~EnvGuard() { ::unsetenv(name_); }
  void set(const char* value) { ::setenv(name_, value, 1); }

 private:
  const char* name_;
};

TEST(EnvCount, FallbackOnUnsetEmptyAndGarbage) {
  EnvGuard env("EFD_TEST_COUNT");
  EXPECT_EQ(core::env_count("EFD_TEST_COUNT", 7), 7);
  env.set("");
  EXPECT_EQ(core::env_count("EFD_TEST_COUNT", 7), 7);
  env.set("   ");
  EXPECT_EQ(core::env_count("EFD_TEST_COUNT", 7), 7);
  env.set("abc");
  EXPECT_EQ(core::env_count("EFD_TEST_COUNT", 7), 7);
  env.set("12junk");
  EXPECT_EQ(core::env_count("EFD_TEST_COUNT", 7), 7);
  env.set("0");
  EXPECT_EQ(core::env_count("EFD_TEST_COUNT", 7), 7);
  env.set("-3");
  EXPECT_EQ(core::env_count("EFD_TEST_COUNT", 7), 7);
  env.set("999999999999999999999");  // overflows long
  EXPECT_EQ(core::env_count("EFD_TEST_COUNT", 7), 7);
}

TEST(EnvCount, ParsesAndClamps) {
  EnvGuard env("EFD_TEST_COUNT");
  env.set("12");
  EXPECT_EQ(core::env_count("EFD_TEST_COUNT", 7), 12);
  env.set(" 7 ");  // surrounding whitespace is fine
  EXPECT_EQ(core::env_count("EFD_TEST_COUNT", 1), 7);
  env.set("50000");
  EXPECT_EQ(core::env_count("EFD_TEST_COUNT", 1, 1024), 1024);
}

TEST(EnvCount, ShardAndThreadKnobsAreHardened) {
  {
    EnvGuard env("EFD_SHARDS");
    EXPECT_EQ(ShardedSimulator::env_shards(3), 3);
    env.set("8");
    EXPECT_EQ(ShardedSimulator::env_shards(1), 8);
    env.set("not-a-number");
    EXPECT_EQ(ShardedSimulator::env_shards(1), 1);
    env.set("4096");
    EXPECT_EQ(ShardedSimulator::env_shards(1), 1024);
  }
  {
    EnvGuard env("EFD_BENCH_THREADS");
    EXPECT_EQ(testbed::ParallelRunner::env_threads(), 0);
    env.set("");
    EXPECT_EQ(testbed::ParallelRunner::env_threads(), 0);
    env.set("-2");
    EXPECT_EQ(testbed::ParallelRunner::env_threads(), 0);
    env.set("6");
    EXPECT_EQ(testbed::ParallelRunner::env_threads(), 6);
  }
}

// --- advance_to -----------------------------------------------------------

TEST(AdvanceTo, MovesClockWithoutDispatching) {
  Simulator sim;
  int fired = 0;
  sim.after_inline(nanoseconds(100), [&fired] { ++fired; });
  sim.advance_to(Time{50});
  EXPECT_EQ(sim.now().ns(), 50);
  EXPECT_EQ(fired, 0);
  // The pending event still fires at its own time afterwards.
  sim.run_until(Time{100});
  EXPECT_EQ(fired, 1);
}

TEST(AdvanceTo, ReapsTombstonesOnTheWay) {
  Simulator sim;
  EventHandle h = sim.after_inline(nanoseconds(10), [] {});
  h.cancel();
  sim.after_inline(nanoseconds(100), [] {});
  sim.advance_to(Time{60});
  EXPECT_EQ(sim.now().ns(), 60);
  EXPECT_EQ(sim.pending_events(), 1u);  // the cancelled one was collected
}

TEST(AdvanceTo, LandingExactlyOnAPendingEventIsAllowed) {
  Simulator sim;
  int fired = 0;
  sim.after_inline(nanoseconds(100), [&fired] { ++fired; });
  sim.advance_to(Time{100});
  EXPECT_EQ(sim.now().ns(), 100);
  EXPECT_EQ(fired, 0);
  sim.run_until(Time{100});
  EXPECT_EQ(fired, 1);
}

// --- Toy cells: ordering and determinism ----------------------------------

/// A ring of N cells. Each cell ticks every 500us, forwarding a counter to
/// its right neighbor; arrivals hop `kHops` times before dying. Everything
/// observable lands in per-cell logs.
struct ToyRing {
  static constexpr int kHops = 3;

  explicit ToyRing(int n_cells, int n_shards, std::int64_t lookahead_ns = 1'000'000,
                   std::size_t mailbox_capacity = 0)
      : n(n_cells) {
    ShardedSimulator::Config cfg;
    cfg.n_cells = n_cells;
    cfg.n_shards = n_shards;
    cfg.mailbox_capacity = mailbox_capacity;
    for (int c = 0; c < n_cells; ++c) {
      cfg.links.push_back({c, (c + 1) % n_cells, Time{lookahead_ns}});
    }
    engine = std::make_unique<ShardedSimulator>(std::move(cfg));
    logs.resize(static_cast<std::size_t>(n_cells));
    counters.assign(static_cast<std::size_t>(n_cells), 0);
    for (int c = 0; c < n_cells; ++c) {
      logs[static_cast<std::size_t>(c)].reserve(4096);
      engine->set_cell_handler(c, [this, c](const BoundaryEvent& e, Simulator& sim) {
        EXPECT_EQ(sim.now().ns(), e.t_ns);  // handler runs at delivery time
        logs[static_cast<std::size_t>(c)].push_back({e.t_ns, e.src_cell, e.a});
        if (e.kind + 1 < kHops) {
          BoundaryEvent f = e;
          f.src_cell = c;
          f.dst_cell = (c + 1) % n;
          f.kind = e.kind + 1;
          f.t_ns = sim.now().ns() + 1'000'000;
          engine->post(f);
        }
      });
      schedule_tick(c);
    }
  }

  void schedule_tick(int c) {
    engine->cell_sim(c).after_inline(microseconds(500), [this, c] {
      Simulator& sim = engine->cell_sim(c);
      const std::uint64_t v = ++counters[static_cast<std::size_t>(c)];
      logs[static_cast<std::size_t>(c)].push_back({sim.now().ns(), -1, v});
      BoundaryEvent e;
      e.t_ns = sim.now().ns() + 1'000'000;
      e.src_cell = c;
      e.dst_cell = (c + 1) % n;
      e.a = v;
      engine->post(e);
      schedule_tick(c);
    });
  }

  /// All logs concatenated in cell order: the grouping-invariant trace.
  [[nodiscard]] std::vector<std::tuple<std::int64_t, int, std::uint64_t>> trace() const {
    std::vector<std::tuple<std::int64_t, int, std::uint64_t>> all;
    for (const auto& log : logs) all.insert(all.end(), log.begin(), log.end());
    return all;
  }

  int n;
  std::unique_ptr<ShardedSimulator> engine;
  std::vector<std::vector<std::tuple<std::int64_t, int, std::uint64_t>>> logs;
  std::vector<std::uint64_t> counters;
};

TEST(ShardedSimulator, DeliveryOrderIsIdenticalAcrossShardCounts) {
  std::vector<std::tuple<std::int64_t, int, std::uint64_t>> reference;
  std::uint64_t reference_events = 0;
  for (const int shards : {1, 2, 3, 6}) {
    ToyRing ring(6, shards);
    EXPECT_EQ(ring.engine->n_shards(), shards);
    ring.engine->run_until(milliseconds(50));
    const auto trace = ring.trace();
    ASSERT_FALSE(trace.empty());
    if (shards == 1) {
      reference = trace;
      reference_events = ring.engine->events_dispatched();
    } else {
      EXPECT_EQ(trace, reference) << "shards=" << shards;
      EXPECT_EQ(ring.engine->events_dispatched(), reference_events);
    }
  }
}

TEST(ShardedSimulator, ArrivalsArePerLinkFifo) {
  ToyRing ring(4, 2);
  ring.engine->run_until(milliseconds(40));
  // Within one cell's log, arrivals from a fixed source must appear in
  // nondecreasing timestamp order (mailbox FIFO + merge order).
  for (int c = 0; c < ring.n; ++c) {
    std::int64_t last_arrival = -1;
    for (const auto& [t, src, v] : ring.logs[static_cast<std::size_t>(c)]) {
      if (src < 0) continue;  // local tick
      EXPECT_GE(t, last_arrival);
      last_arrival = t;
    }
  }
  const auto& stats = ring.engine->shard_stats();
  std::uint64_t posted = 0;
  std::uint64_t delivered = 0;
  for (const auto& s : stats) {
    posted += s.boundary_posted;
    delivered += s.boundary_delivered;
  }
  EXPECT_GT(posted, 0u);
  // Everything posted for delivery inside the run must have been delivered
  // (the last window of each shard extends through end).
  EXPECT_GT(delivered, 0u);
  EXPECT_LE(delivered, posted);
}

TEST(ShardedSimulator, RepeatedRunsContinueTheTimeline) {
  ToyRing a(4, 2);
  a.engine->run_until(milliseconds(20));
  a.engine->run_until(milliseconds(40));
  ToyRing b(4, 2);
  b.engine->run_until(milliseconds(40));
  EXPECT_EQ(a.trace(), b.trace());
}

TEST(ShardedSimulator, SteadyStateWindowsAreAllocationFree) {
  // n_shards == 1 runs the identical window protocol inline on this
  // thread, so the counting allocator sees exactly the engine's work.
  ToyRing ring(2, 1);
  for (auto& log : ring.logs) log.reserve(1 << 16);
  // Warm-up: past the second mailbox chunk (256 events each), so chunk
  // recycling has a spare in the free list; slab and metric ids warm too.
  ring.engine->run_until(milliseconds(400));
  const testsupport::AllocationWindow window;
  ring.engine->run_until(milliseconds(460));
  EXPECT_EQ(window.count(), 0u);
}

// --- Mailbox counters and freelist recycling -------------------------------

TEST(ShardMailbox, CountersTrackOccupancyAndPeak) {
  ShardMailbox m;
  BoundaryEvent e;
  for (int i = 0; i < 3; ++i) {
    e.t_ns = i;
    m.push(e);
  }
  EXPECT_EQ(m.occupancy(), 3u);
  EXPECT_EQ(m.peak_occupancy(), 3u);
  ASSERT_NE(m.peek(), nullptr);
  m.pop();
  ASSERT_NE(m.peek(), nullptr);
  m.pop();
  EXPECT_EQ(m.occupancy(), 1u);
  EXPECT_EQ(m.peak_occupancy(), 3u);  // high-water sticks
  EXPECT_EQ(m.total_pushed(), 3u);
  EXPECT_EQ(m.total_popped(), 2u);
  m.reset();
  EXPECT_EQ(m.occupancy(), 0u);
  EXPECT_EQ(m.peak_occupancy(), 0u);
  EXPECT_EQ(m.total_pushed(), 0u);
  EXPECT_EQ(m.peek(), nullptr);
}

TEST(ShardMailbox, ForEachPendingWalksFifoAcrossChunks) {
  ShardMailbox m;
  BoundaryEvent e;
  const int kN = static_cast<int>(ShardMailbox::kChunkEvents) * 2 + 17;
  for (int i = 0; i < kN; ++i) {
    e.t_ns = i;
    m.push(e);
  }
  // Consume a prefix so the walk starts mid-chunk.
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(m.peek(), nullptr);
    m.pop();
  }
  std::int64_t expect = 100;
  m.for_each_pending([&](const BoundaryEvent& ev) { EXPECT_EQ(ev.t_ns, expect++); });
  EXPECT_EQ(expect, kN);
}

TEST(ShardMailbox, FreelistRecyclesChunksUnderBoundaryChurn) {
  ShardMailbox m;
  BoundaryEvent e;
  // Lockstep push/pop across several chunk boundaries warms the free list
  // (and the free-list vector's capacity).
  const int kChunk = static_cast<int>(ShardMailbox::kChunkEvents);
  for (int i = 0; i < kChunk * 3; ++i) {
    e.t_ns = i;
    m.push(e);
    ASSERT_NE(m.peek(), nullptr);
    m.pop();
  }
  // Steady state: every chunk the producer needs comes back from the
  // recycler — churn across four more boundaries allocates nothing.
  const testsupport::AllocationWindow window;
  for (int i = 0; i < kChunk * 4; ++i) {
    e.t_ns = i;
    m.push(e);
    ASSERT_NE(m.peek(), nullptr);
    m.pop();
  }
  EXPECT_EQ(window.count(), 0u);
  EXPECT_EQ(m.occupancy(), 0u);
}

// --- Watchdog, abort, and exception drain ----------------------------------

TEST(ShardedSimulator, WatchdogAbortsADeliberatelyStalledShard) {
  // One cell wedges (spinning until told to abort) on both the inline
  // 1-shard path and a 2-shard worker pool: the watchdog must detect the
  // missing progress and fail the run instead of hanging forever.
  for (const int shards : {1, 2}) {
    ShardedSimulator::Config cfg;
    cfg.n_cells = 2;
    cfg.n_shards = shards;
    cfg.links.push_back({0, 1, Time{1'000'000}});
    cfg.links.push_back({1, 0, Time{1'000'000}});
    cfg.watchdog.budget_ns = 100'000'000;  // 100 ms of wall-clock silence
    cfg.watchdog.poll_ns = 10'000'000;
    ShardedSimulator engine(std::move(cfg));
    engine.set_cell_handler(0, [](const BoundaryEvent&, Simulator&) {});
    engine.set_cell_handler(1, [](const BoundaryEvent&, Simulator&) {});
    engine.cell_sim(0).after_inline(milliseconds(1), [&engine] {
      while (!engine.abort_requested()) std::this_thread::yield();
    });
    EXPECT_THROW(engine.run_until(milliseconds(10)), ShardStallError)
        << "shards=" << shards;
  }
}

TEST(ShardedSimulator, RequestAbortStopsARunCooperatively) {
  ShardedSimulator::Config cfg;
  cfg.n_cells = 1;
  cfg.n_shards = 1;
  ShardedSimulator engine(std::move(cfg));
  engine.cell_sim(0).after_inline(milliseconds(1), [&engine] {
    engine.request_abort();
  });
  EXPECT_THROW(engine.run_until(milliseconds(10)), ShardStallError);
  EXPECT_TRUE(engine.abort_requested());
  // reset() rearms the engine for reuse after an aborted run.
  engine.reset();
  EXPECT_FALSE(engine.abort_requested());
  engine.run_until(milliseconds(5));
}

TEST(ShardedSimulator, CellExceptionPropagatesWithoutHanging) {
  ToyRing ring(8, 4);
  ring.engine->cell_sim(3).after_inline(milliseconds(5), [] {
    throw std::runtime_error("mid-storm cell failure");
  });
  // The throwing shard publishes a drain horizon, the other three finish
  // their windows, and run_until rethrows the first cell exception.
  EXPECT_THROW(ring.engine->run_until(milliseconds(50)), std::runtime_error);
}

// --- Backpressure -----------------------------------------------------------

TEST(ShardedSimulator, BoundedMailboxesKeepTheTraceIdentical) {
  ToyRing reference(6, 3);
  reference.engine->run_until(milliseconds(50));
  // capacity 1 is the most aggressive bound: producers stall at nearly
  // every horizon with anything in flight, yet delivery order (and hence
  // the trace) cannot change — backpressure only delays the producer.
  ToyRing bounded(6, 3, 1'000'000, /*mailbox_capacity=*/1);
  bounded.engine->run_until(milliseconds(50));
  EXPECT_EQ(bounded.trace(), reference.trace());
  EXPECT_EQ(bounded.engine->events_dispatched(),
            reference.engine->events_dispatched());
  EXPECT_GT(bounded.engine->mailbox_peak_occupancy(), 0u);
}

// --- Engine checkpoint fingerprints ----------------------------------------

TEST(ShardedSimulator, CheckpointFingerprintIsReplayInvariant) {
  ToyRing a(4, 2);
  a.engine->run_until(milliseconds(20));
  const EngineCheckpoint cp = a.engine->checkpoint();
  EXPECT_EQ(cp.n_cells, 4);
  EXPECT_EQ(cp.n_shards, 2);
  ASSERT_EQ(cp.shards.size(), 2u);
  EXPECT_TRUE(a.engine->matches(cp));
  // A second, independently built ring replayed to the same horizon lands
  // on the identical fingerprint; advancing past it diverges.
  ToyRing b(4, 2);
  b.engine->run_until(milliseconds(20));
  EXPECT_EQ(b.engine->checkpoint(), cp);
  EXPECT_EQ(b.engine->checkpoint().digest(), cp.digest());
  b.engine->run_until(milliseconds(30));
  EXPECT_FALSE(b.engine->matches(cp));
}

// --- Campus: digest invariance and reset-replay ---------------------------

testbed::CampusRunConfig small_campus(int n_shards) {
  testbed::CampusRunConfig cfg;
  cfg.campus.n_outlets = 60;
  cfg.campus.outlets_per_board = 12;  // 5 boards
  cfg.campus.stations_per_board = 3;
  cfg.campus.boards_per_building = 3;
  cfg.campus.seed = 42;
  cfg.n_shards = n_shards;
  cfg.duration = milliseconds(80);
  cfg.p_remote = 0.4;
  return cfg;
}

TEST(Campus, DigestIsInvariantAcrossShardCounts) {
  const testbed::CampusResult r1 = testbed::run_campus(small_campus(1));
  ASSERT_GT(r1.events, 0u);
  ASSERT_GT(r1.delivered, 0u);
  ASSERT_GT(r1.packets_remote, 0u);
  ASSERT_GT(r1.boundary_posted, 0u);
  for (const int shards : {2, 5}) {
    const testbed::CampusResult r = testbed::run_campus(small_campus(shards));
    EXPECT_EQ(r.digest, r1.digest) << "shards=" << shards;
    EXPECT_EQ(r.events, r1.events) << "shards=" << shards;
    EXPECT_EQ(r.delivered, r1.delivered) << "shards=" << shards;
    EXPECT_EQ(r.boundary_posted, r1.boundary_posted) << "shards=" << shards;
    EXPECT_EQ(r.n_shards, shards);
  }
}

TEST(Campus, ResetReplayReproducesTheDigest) {
  testbed::CampusWorld world(small_campus(2));
  world.run();
  const testbed::CampusResult first = world.result();
  world.reset_and_rebuild();
  world.run();
  const testbed::CampusResult second = world.result();
  EXPECT_EQ(second.digest, first.digest);
  EXPECT_EQ(second.events, first.events);
  EXPECT_EQ(second.delivered, first.delivered);
}

TEST(Campus, ShardStatsAccountForEveryEvent) {
  testbed::CampusWorld world(small_campus(2));
  world.run();
  const testbed::CampusResult r = world.result();
  std::uint64_t by_shard = 0;
  for (const auto& s : r.shards) by_shard += s.events_dispatched;
  EXPECT_EQ(by_shard, r.events);
  EXPECT_GE(r.load_balance, 1.0);
}

}  // namespace
}  // namespace efd::sim

// Determinism gate (ctest label `proptest`): the combined digest of a sweep
// is a pure function of (seed, n) — independent of worker count, scheduling
// and reruns. This is the property the figure benches rely on for their
// byte-identical baselines, asserted here over randomized scenarios instead
// of the fixed Fig. 2 testbed.
#include <gtest/gtest.h>

#include "src/testkit/proptest.hpp"
#include "src/testkit/scenario.hpp"
#include "src/testkit/world.hpp"

namespace efd::testkit {
namespace {

TEST(ProptestDeterminism, CombinedDigestIndependentOfWorkerCount) {
  ProptestOptions one;
  one.threads = 1;
  ProptestOptions four;
  four.threads = 4;
  const auto a = run_proptest(1111, 16, one);
  const auto b = run_proptest(1111, 16, four);
  EXPECT_TRUE(a.ok()) << a.summary();
  EXPECT_TRUE(b.ok()) << b.summary();
  EXPECT_EQ(a.combined_digest, b.combined_digest);
}

TEST(ProptestDeterminism, SameSeedRunsAreByteIdentical) {
  // check_scenario already replays every scenario twice on a reset engine
  // and compares digests; this asserts the end-to-end surface once more at
  // the report level across independent invocations.
  const auto a = run_proptest(97, 8);
  const auto b = run_proptest(97, 8);
  EXPECT_TRUE(a.ok()) << a.summary();
  EXPECT_EQ(a.combined_digest, b.combined_digest);
}

TEST(ProptestDeterminism, WorldRunsAreReplayableScenarioByScenario) {
  ScenarioGen gen(5150);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const Scenario s = gen.generate(i);
    sim::Simulator sim_a;
    ScenarioWorld wa(s, sim_a);
    const std::uint64_t da = wa.run().digest();
    sim::Simulator sim_b;
    ScenarioWorld wb(s, sim_b);
    const std::uint64_t db = wb.run().digest();
    EXPECT_EQ(da, db) << "scenario " << i << ":\n" << s.describe();
  }
}

}  // namespace
}  // namespace efd::testkit

// End-to-end integration tests: the cross-module behaviours the paper's
// evaluation rests on, exercised through the full testbed stack.
#include <gtest/gtest.h>

#include "src/core/capacity.hpp"
#include "src/core/etx.hpp"
#include "src/core/sof_capture.hpp"
#include "src/hybrid/device.hpp"
#include "src/net/meters.hpp"
#include "src/net/sources.hpp"
#include "src/testbed/experiment.hpp"

namespace efd {
namespace {

struct IntegrationFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<testbed::Testbed> tb;

  void SetUp() override {
    testbed::Testbed::Config cfg;
    cfg.with_hpav500 = false;
    tb = std::make_unique<testbed::Testbed>(sim, cfg);
    sim.run_until(testbed::weekday_afternoon());
  }
};

TEST_F(IntegrationFixture, ThroughputTracksBleOverOneSeventh) {
  // Fig. 15's core claim: BLE ≈ 1.7 * T. The paper averages BLE over the
  // whole saturated run (a snapshot can land right after an impulsive
  // retune); poll the MM every 500 ms alongside the traffic.
  for (const auto& [a, b] : {std::pair{11, 10}, {11, 4}, {15, 13}}) {
    sim::RunningStats ble_samples;
    sim::EventHandle poller;
    std::function<void()> poll = [&] {
      ble_samples.add(tb->plc_network_of(b).mm_average_ble(a, b));
      poller = sim.after(sim::milliseconds(500), poll);
    };
    poller = sim.after(sim::milliseconds(500), poll);
    const auto r = testbed::measure_plc_throughput(*tb, a, b, sim::seconds(15));
    poller.cancel();
    ASSERT_GT(r.mean_mbps, 1.0) << a << "->" << b;
    const double ratio = ble_samples.mean() / r.mean_mbps;
    EXPECT_GT(ratio, 1.4) << a << "->" << b;
    EXPECT_LT(ratio, 2.1) << a << "->" << b;
  }
}

TEST_F(IntegrationFixture, GoodLinksAreStableBadLinksVary) {
  // Pick the best and a weak-but-alive link from the live channel map.
  auto& ch = tb->plc_channel();
  int ga = 0, gb = 1, ba = -1, bb = -1;
  double best_snr = -1e9;
  for (const auto& [a, b] : tb->plc_links()) {
    const double snr = ch.mean_snr_db(a, b, 0, sim.now());
    if (snr > best_snr) {
      best_snr = snr;
      ga = a;
      gb = b;
    }
    if (ba < 0 && snr > 8.0 && snr < 14.0) {
      ba = a;
      bb = b;
    }
  }
  ASSERT_GE(ba, 0);
  // Warm the links first: the paper's devices had long-converged tone maps
  // when measured; our estimators start cold.
  (void)testbed::measure_plc_throughput(*tb, ga, gb, sim::seconds(5));
  (void)testbed::measure_plc_throughput(*tb, ba, bb, sim::seconds(5));
  const auto good = testbed::measure_plc_throughput(*tb, ga, gb, sim::seconds(15));
  const auto bad = testbed::measure_plc_throughput(*tb, ba, bb, sim::seconds(15));
  EXPECT_GT(good.mean_mbps, 2.0 * bad.mean_mbps);
  // σ_P stays small in absolute terms for good links (Fig. 3: < 4 Mb/s).
  EXPECT_LT(good.std_mbps, 4.0);
}

TEST_F(IntegrationFixture, AsymmetricLinksExist) {
  // §5: ~30 % of pairs show >1.5x asymmetry. Count SNR-asymmetric pairs
  // across the whole testbed, then confirm the most asymmetric live pair
  // with actual traffic.
  auto& ch = tb->plc_channel();
  int asymmetric = 0, total = 0;
  int best_a = -1, best_b = -1;
  double best_diff = 0.0;
  for (const auto& [a, b] : tb->plc_links()) {
    if (a > b) continue;
    const double fwd = ch.mean_snr_db(a, b, 0, sim.now());
    const double rev = ch.mean_snr_db(b, a, 0, sim.now());
    if (fwd < 4.0 && rev < 4.0) continue;  // dead pair
    ++total;
    const double diff = std::abs(fwd - rev);
    if (diff > 3.0) ++asymmetric;
    if (diff > best_diff && std::min(fwd, rev) > 8.0) {
      best_diff = diff;
      best_a = a;
      best_b = b;
    }
  }
  ASSERT_GT(total, 50);
  // A substantial fraction of pairs is asymmetric (paper: ~30%).
  EXPECT_GE(asymmetric * 100, total * 15);
  ASSERT_GE(best_a, 0);
  const auto fwd = testbed::measure_plc_throughput(*tb, best_a, best_b, sim::seconds(8));
  const auto rev = testbed::measure_plc_throughput(*tb, best_b, best_a, sim::seconds(8));
  ASSERT_GT(std::min(fwd.mean_mbps, rev.mean_mbps), 0.5);
  const double ratio = std::max(fwd.mean_mbps / rev.mean_mbps,
                                rev.mean_mbps / fwd.mean_mbps);
  // Goodput-optimal loading narrows the measured gap a little relative to
  // the SNR gap; 1.2x on the single most SNR-asymmetric pair is still a
  // clear asymmetry signal (Fig. 6 reports the population statistics).
  EXPECT_GT(ratio, 1.2);
}

TEST_F(IntegrationFixture, CrossBoardPlcIsDead) {
  // Stations on different boards share no usable PLC channel (§3.1) — the
  // networks are separate, and even the raw channel is hopeless.
  const double snr = tb->plc_channel().mean_snr_db(11, 12, 0, sim.now());
  EXPECT_LT(snr, 3.0);
}

TEST_F(IntegrationFixture, BroadcastLossIsTinyOnHealthyLinks) {
  // §8.1: broadcast probes ride ROBO; loss rates are ~1e-4 across a wide
  // quality range, so they carry no quality signal. Pick one strong and one
  // mid-quality receiver from the live channel map.
  auto& ch = tb->plc_channel();
  const int src = 11;
  int strong = -1, mid = -1;
  for (int s = 0; s <= 10; ++s) {
    const double snr = ch.mean_snr_db(src, s, 0, sim.now());
    if (strong < 0 && snr > 25.0) strong = s;
    if (mid < 0 && snr > 6.0 && snr < 18.0) mid = s;
  }
  ASSERT_GE(strong, 0);
  ASSERT_GE(mid, 0);
  net::LossMeter loss_strong, loss_mid;
  tb->plc_station(strong).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { loss_strong.on_packet(p, t); });
  tb->plc_station(mid).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { loss_mid.on_packet(p, t); });
  net::ProbeSource::Config cfg;
  cfg.src = src;
  cfg.dst = net::kBroadcast;
  cfg.interval = sim::milliseconds(100);
  cfg.packet_bytes = 1500;
  net::ProbeSource probes(sim, tb->plc_station(src).mac(), cfg);
  probes.run(sim.now(), sim.now() + sim::seconds(30));
  sim.run_until(sim.now() + sim::seconds(31));
  EXPECT_GT(loss_strong.received(), 290u);
  EXPECT_LT(loss_strong.loss_rate(), 0.02);
  // A link of much lower data quality still hears nearly all ROBO
  // broadcasts — which is precisely why broadcast ETX is uninformative.
  EXPECT_LT(loss_mid.loss_rate(), 0.05);
}

TEST_F(IntegrationFixture, SnifferUEtxCorrelatesWithPberr) {
  // §8.1: U-ETX measured from SoF timestamps grows with PBerr. Pick a
  // moderate-quality link (alive but error-prone) from the live testbed.
  auto& ch = tb->plc_channel();
  int src = -1, dst = -1;
  for (const auto& [a, b] : tb->plc_links()) {
    const double snr = ch.mean_snr_db(a, b, 0, sim.now());
    if (snr > 12.0 && snr < 20.0) {
      src = a;
      dst = b;
      break;
    }
  }
  ASSERT_GE(src, 0);
  auto& medium = tb->plc_network_of(src).medium();
  core::SofCapture capture(medium);
  capture.filter(src, dst);
  net::ProbeSource::Config cfg;
  cfg.src = src;
  cfg.dst = dst;
  cfg.interval = sim::milliseconds(75);
  cfg.packet_bytes = 1500;
  net::ProbeSource probes(sim, tb->plc_station(src).mac(), cfg);
  probes.run(sim.now(), sim.now() + sim::seconds(60));
  sim.run_until(sim.now() + sim::seconds(61));
  const auto records = capture.records();
  ASSERT_GT(records.size(), 500u);
  const auto result = core::RetransmissionAnalysis{}.analyze(records);
  EXPECT_GE(result.u_etx(), 1.0);
  EXPECT_LT(result.u_etx(), 5.0);
}

TEST_F(IntegrationFixture, HybridBeatsEitherMediumAlone) {
  // §7.4 / Fig. 20: capacity-proportional splitting approaches the sum of
  // the two mediums; round-robin bottlenecks at 2x the slower one.
  const int src = 11, dst = 9;

  const auto plc = testbed::measure_plc_throughput(*tb, src, dst, sim::seconds(10));
  const auto wifi = testbed::measure_wifi_throughput(*tb, src, dst, sim::seconds(10));

  // Hybrid run.
  auto& plc_tx = tb->plc_station(src).mac();
  auto& plc_rx = tb->plc_station(dst).mac();
  auto& wifi_tx = tb->wifi_station(src);
  auto& wifi_rx = tb->wifi_station(dst);
  hybrid::HybridDevice tx_dev(sim, {&plc_tx, &wifi_tx},
                              std::make_unique<hybrid::CapacityScheduler>(sim::Rng{3}));
  hybrid::HybridDevice rx_dev(sim, {&plc_rx, &wifi_rx},
                              std::make_unique<hybrid::RoundRobinScheduler>(2));
  net::ThroughputMeter meter;
  rx_dev.set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { meter.on_packet(p, t); });
  rx_dev.start_receiving();
  tx_dev.set_capacities({plc.mean_mbps, wifi.mean_mbps});

  net::UdpSource::Config cfg;
  cfg.src = src;
  cfg.dst = dst;
  cfg.rate_bps = 400e6;
  net::UdpSource source(sim, tx_dev, cfg);
  const sim::Time start = sim.now();
  source.run(start, start + sim::seconds(10));
  sim.run_until(start + sim::seconds(10));
  meter.finish(sim.now());
  const double hybrid_mbps = meter.average_mbps(sim::seconds(10));

  EXPECT_GT(hybrid_mbps, std::max(plc.mean_mbps, wifi.mean_mbps) * 1.15);
  EXPECT_GT(hybrid_mbps, 0.75 * (plc.mean_mbps + wifi.mean_mbps));
}

TEST_F(IntegrationFixture, MmPollerMatchesSofCapture) {
  // Table 2: BLE is observable both via the SoF delimiter and via MMs; the
  // two views agree after convergence.
  auto& medium = tb->plc_network_of(11).medium();
  core::SofCapture capture(medium);
  capture.filter(11, 10);
  (void)testbed::measure_plc_throughput(*tb, 11, 10, sim::seconds(10));
  const double from_sof = capture.average_ble_mbps(11, 10, 50);
  const double from_mm = tb->plc_network_of(11).mm_average_ble(11, 10);
  EXPECT_NEAR(from_sof, from_mm, from_mm * 0.15);
}

}  // namespace
}  // namespace efd

#include "src/plc/modulation.hpp"

#include <gtest/gtest.h>

namespace efd::plc {
namespace {

constexpr Modulation kLadder[] = {
    Modulation::kOff,   Modulation::kBpsk,   Modulation::kQpsk,
    Modulation::kQam8,  Modulation::kQam16,  Modulation::kQam64,
    Modulation::kQam256, Modulation::kQam1024,
};

TEST(Modulation, BitsPerSymbolLadder) {
  EXPECT_EQ(bits_per_symbol(Modulation::kOff), 0);
  EXPECT_EQ(bits_per_symbol(Modulation::kBpsk), 1);
  EXPECT_EQ(bits_per_symbol(Modulation::kQpsk), 2);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam8), 3);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam16), 4);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam64), 6);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam256), 8);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam1024), 10);
}

TEST(Modulation, ThresholdsAreMonotoneInBits) {
  for (std::size_t i = 2; i < std::size(kLadder); ++i) {
    EXPECT_LT(required_snr_db(kLadder[i - 1]), required_snr_db(kLadder[i]));
  }
}

TEST(Modulation, PickAtExactThreshold) {
  for (std::size_t i = 1; i < std::size(kLadder); ++i) {
    EXPECT_EQ(pick_modulation(required_snr_db(kLadder[i])), kLadder[i]);
  }
}

TEST(Modulation, PickBelowBpskIsOff) {
  EXPECT_EQ(pick_modulation(-20.0), Modulation::kOff);
  EXPECT_EQ(pick_modulation(required_snr_db(Modulation::kBpsk) - 0.1),
            Modulation::kOff);
}

TEST(Modulation, PickVeryHighSnrIsMaxConstellation) {
  EXPECT_EQ(pick_modulation(60.0), Modulation::kQam1024);
}

class PickSweep : public ::testing::TestWithParam<double> {};

TEST_P(PickSweep, PickedModulationRespectsThresholdAndIsMaximal) {
  const double snr = GetParam();
  const Modulation m = pick_modulation(snr);
  if (m != Modulation::kOff) {
    EXPECT_GE(snr, required_snr_db(m));
  }
  // No higher constellation would also satisfy the threshold.
  for (Modulation other : kLadder) {
    if (bits_per_symbol(other) > bits_per_symbol(m)) {
      EXPECT_LT(snr, required_snr_db(other));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SnrGrid, PickSweep,
                         ::testing::Range(-10.0, 45.0, 1.37));

TEST(Modulation, BerDecreasesWithSnr) {
  for (Modulation m : kLadder) {
    if (m == Modulation::kOff) continue;
    double prev = 1.0;
    for (double snr = -5.0; snr <= 45.0; snr += 2.0) {
      const double ber = uncoded_ber(m, snr);
      EXPECT_LE(ber, prev + 1e-12);
      EXPECT_GE(ber, 0.0);
      EXPECT_LE(ber, 1.0);
      prev = ber;
    }
  }
}

TEST(Modulation, HigherOrderHasHigherBerAtSameSnr) {
  const double snr = 15.0;
  EXPECT_LT(uncoded_ber(Modulation::kQpsk, snr),
            uncoded_ber(Modulation::kQam64, snr));
  EXPECT_LT(uncoded_ber(Modulation::kQam64, snr),
            uncoded_ber(Modulation::kQam1024, snr));
}

TEST(Modulation, OffCarrierHasNoErrors) {
  EXPECT_DOUBLE_EQ(uncoded_ber(Modulation::kOff, -100.0), 0.0);
}

TEST(Modulation, LutMatchesExactWithin1e4Everywhere) {
  // The LUT-backed fast path must track the closed form within 1e-4
  // absolute over the whole operating range, including beyond the table
  // ends where it clamps (the BER curve is flat there).
  for (Modulation m : kLadder) {
    for (double snr = -85.0; snr <= 65.0; snr += 0.01) {
      ASSERT_NEAR(uncoded_ber(m, snr), uncoded_ber_exact(m, snr), 1e-4)
          << to_string(m) << " at " << snr << " dB";
    }
  }
}

TEST(Modulation, LutIsExactAtExtremes) {
  for (Modulation m : kLadder) {
    if (m == Modulation::kOff) continue;
    // Deep noise: the LUT clamps at its -80 dB end, where the curve has
    // already flattened onto the 0.5-ish error floor — the clamp error is
    // what the -80 dB table floor was sized for.
    EXPECT_NEAR(uncoded_ber(m, -200.0), uncoded_ber_exact(m, -200.0), 1e-4);
    // High SNR: both sides are (denormal-level) zero.
    EXPECT_NEAR(uncoded_ber(m, 100.0), 0.0, 1e-12);
  }
}

TEST(Modulation, ToStringIsTotal) {
  for (Modulation m : kLadder) EXPECT_NE(to_string(m), "unknown");
}

}  // namespace
}  // namespace efd::plc

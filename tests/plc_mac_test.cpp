#include "src/plc/mac.hpp"

#include <gtest/gtest.h>

#include "src/net/meters.hpp"
#include "src/net/sources.hpp"
#include "src/plc/network.hpp"

namespace efd::plc {
namespace {

/// A small isolated PLC network on a power strip (the setup the MAC
/// literature uses for contention experiments): N stations, short cables,
/// no appliances.
struct MacFixture : ::testing::Test {
  sim::Simulator sim;
  grid::PowerGrid grid;
  std::unique_ptr<PlcChannel> channel;
  std::unique_ptr<PlcNetwork> network;

  void build(int n_stations, PlcNetwork::Config cfg = {}) {
    const int strip = grid.add_node("strip");
    channel = std::make_unique<PlcChannel>(grid, PhyParams::hpav());
    network = std::make_unique<PlcNetwork>(sim, *channel, sim::Rng{9}, cfg);
    for (int i = 0; i < n_stations; ++i) {
      const int outlet = grid.add_node("s" + std::to_string(i));
      grid.add_cable(strip, outlet, 2.0 + i);
      channel->attach_station(i, outlet);
      network->add_station(i, outlet);
    }
  }
};

TEST_F(MacFixture, DeliversPacketsEndToEnd) {
  build(2);
  net::ThroughputMeter meter;
  network->station(1).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { meter.on_packet(p, t); });
  net::UdpSource::Config cfg;
  cfg.src = 0;
  cfg.dst = 1;
  cfg.rate_bps = 10e6;
  net::UdpSource source(sim, network->station(0).mac(), cfg);
  source.run(sim::Time{}, sim::seconds(2));
  sim.run_until(sim::seconds(3));
  meter.finish(sim.now());
  // 10 Mb/s offered on a clean strip link: everything arrives.
  EXPECT_NEAR(meter.average_mbps(sim::seconds(2)), 10.0, 1.0);
}

TEST_F(MacFixture, SaturationDropsExcessButDeliversCapacity) {
  build(2);
  net::ThroughputMeter meter;
  network->station(1).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { meter.on_packet(p, t); });
  net::UdpSource::Config cfg;
  cfg.src = 0;
  cfg.dst = 1;
  cfg.rate_bps = 400e6;
  net::UdpSource source(sim, network->station(0).mac(), cfg);
  source.run(sim::Time{}, sim::seconds(5));
  sim.run_until(sim::seconds(5));
  meter.finish(sim.now());
  EXPECT_GT(source.dropped_packets(), 0u);  // non-blocking queue drops
  const double mbps = meter.average_mbps(sim::seconds(5));
  EXPECT_GT(mbps, 70.0);  // near the HPAV UDP ceiling
  EXPECT_LT(mbps, 95.0);
}

TEST_F(MacFixture, PacketsArriveInOrderOnOneLink) {
  build(2);
  net::OrderMeter order;
  network->station(1).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { order.on_packet(p, t); });
  net::UdpSource::Config cfg;
  cfg.src = 0;
  cfg.dst = 1;
  cfg.rate_bps = 50e6;
  net::UdpSource source(sim, network->station(0).mac(), cfg);
  source.run(sim::Time{}, sim::seconds(2));
  sim.run_until(sim::seconds(3));
  EXPECT_GT(order.received(), 1000u);
  EXPECT_EQ(order.out_of_order(), 0u);
}

TEST_F(MacFixture, BroadcastReachesAllStations) {
  build(4);
  int received[4] = {0, 0, 0, 0};
  for (int i = 1; i < 4; ++i) {
    network->station(i).mac().set_rx_handler(
        [&received, i](const net::Packet&, sim::Time) { ++received[i]; });
  }
  net::ProbeSource::Config cfg;
  cfg.src = 0;
  cfg.dst = net::kBroadcast;
  cfg.interval = sim::milliseconds(100);
  cfg.packet_bytes = 1500;
  net::ProbeSource probes(sim, network->station(0).mac(), cfg);
  probes.run(sim::Time{}, sim::seconds(5));
  sim.run_until(sim::seconds(6));
  for (int i = 1; i < 4; ++i) {
    // ~50 probes; the strip is clean so virtually all arrive.
    EXPECT_GE(received[i], 48) << "station " << i;
  }
}

TEST_F(MacFixture, TwoSaturatedFlowsShareTheMedium) {
  build(4);
  net::ThroughputMeter m1, m2;
  network->station(1).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { m1.on_packet(p, t); });
  network->station(3).mac().set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { m2.on_packet(p, t); });
  net::UdpSource::Config c1, c2;
  c1.src = 0; c1.dst = 1; c1.rate_bps = 400e6; c1.flow_id = 1;
  c2.src = 2; c2.dst = 3; c2.rate_bps = 400e6; c2.flow_id = 2;
  net::UdpSource s1(sim, network->station(0).mac(), c1);
  net::UdpSource s2(sim, network->station(2).mac(), c2);
  s1.run(sim::Time{}, sim::seconds(5));
  s2.run(sim::Time{}, sim::seconds(5));
  sim.run_until(sim::seconds(5));
  const double t1 = m1.average_mbps(sim::seconds(5));
  const double t2 = m2.average_mbps(sim::seconds(5));
  // Both make progress; the sum is below the single-flow ceiling (collisions
  // and contention overhead), and there were actual collisions.
  EXPECT_GT(t1, 10.0);
  EXPECT_GT(t2, 10.0);
  EXPECT_LT(t1 + t2, 95.0);
  EXPECT_GT(network->medium().collisions(), 0u);
}

TEST_F(MacFixture, QueueOverflowDropsWholePackets) {
  PlcNetwork::Config cfg;
  cfg.mac.queue_limit_pbs = 9;  // room for exactly 3 full-size packets
  build(2, cfg);
  auto& mac = network->station(0).mac();
  net::Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 1470;  // 3 PBs
  for (int i = 0; i < 3; ++i) {
    p.seq = static_cast<std::uint32_t>(i);
    EXPECT_TRUE(mac.enqueue(p));
  }
  p.seq = 3;
  EXPECT_FALSE(mac.enqueue(p));
  EXPECT_EQ(mac.packets_dropped(), 1u);
}

TEST_F(MacFixture, SnifferSeesSofRecords) {
  build(2);
  std::vector<SofRecord> records;
  network->medium().add_sniffer(
      [&](const SofRecord& r) { records.push_back(r); });
  net::UdpSource::Config cfg;
  cfg.src = 0;
  cfg.dst = 1;
  cfg.rate_bps = 400e6;
  net::UdpSource source(sim, network->station(0).mac(), cfg);
  source.run(sim::Time{}, sim::seconds(1));
  sim.run_until(sim::seconds(1));
  ASSERT_GT(records.size(), 100u);
  for (const auto& r : records) {
    EXPECT_EQ(r.src, 0);
    EXPECT_EQ(r.dst, 1);
    EXPECT_GE(r.slot, 0);
    EXPECT_LT(r.slot, 6);
    EXPECT_GT(r.n_pbs, 0);
    EXPECT_GT(r.end, r.start);
  }
  // After convergence the advertised BLEs approaches the 150 Mb/s ceiling.
  EXPECT_GT(records.back().ble_mbps, 120.0);
}

TEST_F(MacFixture, FirstFramesAreSoundRobo) {
  build(2);
  std::vector<SofRecord> records;
  network->medium().add_sniffer(
      [&](const SofRecord& r) { records.push_back(r); });
  net::UdpSource::Config cfg;
  cfg.src = 0;
  cfg.dst = 1;
  cfg.rate_bps = 400e6;
  net::UdpSource source(sim, network->station(0).mac(), cfg);
  source.run(sim::Time{}, sim::milliseconds(50));
  sim.run_until(sim::milliseconds(60));
  ASSERT_FALSE(records.empty());
  EXPECT_TRUE(records.front().robo);
  EXPECT_TRUE(records.front().sound);
}

TEST_F(MacFixture, DisableDeferralChangesBackoffDynamics) {
  // Ablation hook: with the 1901 deferral counter disabled the MAC behaves
  // 802.11-like. Under heavy contention (4 saturated senders to one
  // receiver each), collision counts should differ measurably.
  const auto run_with = [&](bool disable) {
    sim::Simulator local_sim;
    grid::PowerGrid local_grid;
    const int strip = local_grid.add_node("strip");
    PlcChannel ch(local_grid, PhyParams::hpav());
    PlcNetwork::Config cfg;
    cfg.mac.disable_deferral = disable;
    PlcNetwork net(local_sim, ch, sim::Rng{17}, cfg);
    std::vector<std::unique_ptr<net::UdpSource>> sources;
    for (int i = 0; i < 8; ++i) {
      const int outlet = local_grid.add_node("o" + std::to_string(i));
      local_grid.add_cable(strip, outlet, 2.0 + i);
      ch.attach_station(i, outlet);
      net.add_station(i, outlet);
    }
    for (int i = 0; i < 4; ++i) {
      net::UdpSource::Config scfg;
      scfg.src = i;
      scfg.dst = i + 4;
      scfg.rate_bps = 400e6;
      scfg.flow_id = i;
      sources.push_back(std::make_unique<net::UdpSource>(
          local_sim, net.station(i).mac(), scfg));
      sources.back()->run(sim::Time{}, sim::seconds(3));
    }
    local_sim.run_until(sim::seconds(3));
    return std::pair{net.medium().collisions(), net.medium().frames_sent()};
  };
  const auto [col_1901, frames_1901] = run_with(false);
  const auto [col_dcf, frames_dcf] = run_with(true);
  // The deferral counter spreads stations over larger CWs without
  // collisions, so 1901 collides less per frame than plain DCF.
  const double rate_1901 =
      static_cast<double>(col_1901) / static_cast<double>(frames_1901);
  const double rate_dcf =
      static_cast<double>(col_dcf) / static_cast<double>(frames_dcf);
  EXPECT_LT(rate_1901, rate_dcf);
}

TEST_F(MacFixture, BeaconRegionCostsAirtime) {
  // Standard-fidelity option: the CCo beacon every 40 ms shaves a few
  // percent off saturated throughput and nothing else.
  const auto run_with = [&](bool beacons) {
    sim::Simulator local_sim;
    grid::PowerGrid local_grid;
    const int strip = local_grid.add_node("strip");
    PlcChannel ch(local_grid, PhyParams::hpav());
    PlcNetwork net(local_sim, ch, sim::Rng{21}, PlcNetwork::Config{});
    for (int i = 0; i < 2; ++i) {
      const int outlet = local_grid.add_node("o" + std::to_string(i));
      local_grid.add_cable(strip, outlet, 2.0 + i);
      ch.attach_station(i, outlet);
      net.add_station(i, outlet);
    }
    if (beacons) net.medium().enable_beacons();
    net::ThroughputMeter meter;
    net.station(1).mac().set_rx_handler(
        [&](const net::Packet& p, sim::Time t) { meter.on_packet(p, t); });
    net::UdpSource::Config cfg;
    cfg.src = 0;
    cfg.dst = 1;
    cfg.rate_bps = 400e6;
    net::UdpSource source(local_sim, net.station(0).mac(), cfg);
    source.run(sim::Time{}, sim::seconds(5));
    local_sim.run_until(sim::seconds(5));
    return std::pair{meter.average_mbps(sim::seconds(5)),
                     net.medium().beacons_sent()};
  };
  const auto [t_plain, b_plain] = run_with(false);
  const auto [t_beacon, b_beacon] = run_with(true);
  EXPECT_EQ(b_plain, 0u);
  EXPECT_NEAR(static_cast<double>(b_beacon), 125.0, 2.0);  // 5 s / 40 ms
  EXPECT_LT(t_beacon, t_plain);                 // beacons cost airtime...
  EXPECT_GT(t_beacon, 0.93 * t_plain);          // ...but only ~1.5-3%%
}

}  // namespace
}  // namespace efd::plc

#include "src/plc/channel.hpp"

#include <gtest/gtest.h>

#include "src/grid/appliance.hpp"

namespace efd::plc {
namespace {

struct ChannelFixture : ::testing::Test {
  grid::PowerGrid grid;
  int na = 0, nj = 0, nb = 0;
  PlcChannel channel{grid, PhyParams::hpav()};

  void SetUp() override {
    na = grid.add_node("a");
    nj = grid.add_node("j");
    nb = grid.add_node("b");
    grid.add_cable(na, nj, 10.0);
    grid.add_cable(nj, nb, 15.0);
    grid.add_appliance(grid::make_appliance(grid::ApplianceType::kFridge, nj, 5));
    channel.attach_station(0, na);
    channel.attach_station(1, nb);
  }

  static sim::Time noon() { return sim::days(1) + sim::hours(12); }
};

TEST_F(ChannelFixture, OutletMapping) {
  EXPECT_EQ(channel.outlet(0), na);
  EXPECT_EQ(channel.outlet(1), nb);
}

TEST_F(ChannelFixture, SlotAtCyclesThroughHalfMainsPeriod) {
  // 50 Hz mains: the half cycle is 10 ms, so 6 slots of ~1.67 ms each.
  EXPECT_EQ(channel.slot_at(sim::Time{}), 0);
  EXPECT_EQ(channel.slot_at(sim::milliseconds(1.0)), 0);
  EXPECT_EQ(channel.slot_at(sim::milliseconds(2.0)), 1);
  EXPECT_EQ(channel.slot_at(sim::milliseconds(9.9)), 5);
  EXPECT_EQ(channel.slot_at(sim::milliseconds(10.1)), 0);  // next half cycle
}

TEST_F(ChannelFixture, SlotAtNeverExceedsSlotCount) {
  for (int i = 0; i < 2000; ++i) {
    const int slot = channel.slot_at(sim::microseconds(i * 7.3));
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, channel.phy().tone_map_slots);
  }
}

TEST_F(ChannelFixture, SnrVectorHasCarrierCount) {
  const auto snr = channel.snr_db(0, 1, 0, noon());
  EXPECT_EQ(static_cast<int>(snr.size()), channel.phy().band.n_carriers);
}

TEST_F(ChannelFixture, StaticSnrIsCachedWithinEpoch) {
  const auto& v1 = channel.static_snr_db(0, 1, 0, noon());
  const double first = v1[10];
  const auto& v2 = channel.static_snr_db(0, 1, 0, noon() + sim::milliseconds(1));
  EXPECT_DOUBLE_EQ(v2[10], first);  // same epoch: cache hit, same values
}

TEST_F(ChannelFixture, CacheInvalidatesAcrossEpochChange) {
  // Find two instants with different appliance state epochs (fridge duty
  // cycle toggles within ~20 min).
  const auto t0 = noon();
  sim::Time t1 = t0;
  for (int i = 1; i < 600; ++i) {
    t1 = t0 + sim::seconds(i * 10.0);
    if (grid.state_epoch(t1) != grid.state_epoch(t0)) break;
  }
  ASSERT_NE(grid.state_epoch(t0), grid.state_epoch(t1));
  const double before = channel.static_snr_db(0, 1, 0, t0)[200];
  const double after = channel.static_snr_db(0, 1, 0, t1)[200];
  EXPECT_NE(before, after);
}

TEST_F(ChannelFixture, SnrDiffersAcrossSlots) {
  const auto t = noon();
  if (!grid.appliance_on(0, t)) GTEST_SKIP();
  double lo = 1e9, hi = -1e9;
  for (int s = 0; s < 6; ++s) {
    const double m = channel.mean_snr_db(0, 1, s, t);
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_GT(hi - lo, 0.1);  // invariance-scale structure exists
}

TEST_F(ChannelFixture, PbErrorMemoIsConsistent) {
  const auto t = noon();
  const auto snr = channel.snr_db(0, 1, 0, t);
  const ToneMap tm = ToneMap::from_snr(snr, 2.0, channel.phy(), 0.0, 7);
  const double p1 = channel.pb_error_probability(tm, 0, 1, 0, t);
  const double p2 = channel.pb_error_probability(tm, 0, 1, 0, t);
  EXPECT_DOUBLE_EQ(p1, p2);
  EXPECT_GE(p1, 0.0);
  EXPECT_LE(p1, 1.0);
}

TEST_F(ChannelFixture, RoboHasLowerErrorThanAggressiveMap) {
  const auto t = noon();
  const auto snr = channel.snr_db(0, 1, 0, t);
  const ToneMap aggressive = ToneMap::from_snr(snr, -6.0, channel.phy(), 0.0, 8);
  const ToneMap robo = ToneMap::robo(channel.phy());
  EXPECT_LE(channel.pb_error_probability(robo, 0, 1, 0, t),
            channel.pb_error_probability(aggressive, 0, 1, 0, t));
}

TEST_F(ChannelFixture, CableDistanceMatchesGrid) {
  EXPECT_DOUBLE_EQ(channel.cable_distance(0, 1), 25.0);
}

}  // namespace
}  // namespace efd::plc

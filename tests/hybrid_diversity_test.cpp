// Diversity-combining tests: first-wins dedup at the tagged ReorderBuffer,
// its interplay with the gap timeout (a duplicate is not a straggler, and
// neither may leak to the app layer), per-flow mode selection on the
// HybridDevice, and allocation pins on the steady-state duplication path.
// Includes alloc_count.hpp, so this binary owns the global operator
// new/delete replacement (one TU per binary).
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "alloc_count.hpp"
#include "src/hybrid/device.hpp"
#include "src/net/meters.hpp"

namespace efd::hybrid {
namespace {

using efd::testsupport::AllocationWindow;

/// Interface stub delivering packets after a fixed latency — two of these
/// with different latencies make a deterministic fast/slow medium pair.
class PipeInterface final : public net::Interface {
 public:
  PipeInterface(sim::Simulator& sim, sim::Time latency) : sim_(sim), latency_(latency) {}

  bool enqueue(const net::Packet& p) override {
    ++enqueued_;
    sim_.after(latency_, [this, p] {
      if (rx_) rx_(p, sim_.now());
    });
    return true;
  }
  [[nodiscard]] std::size_t queue_length() const override { return 0; }
  void set_rx_handler(RxHandler handler) override { rx_ = std::move(handler); }

  std::uint64_t enqueued_ = 0;

 private:
  sim::Simulator& sim_;
  sim::Time latency_;
  RxHandler rx_;
};

/// Sink stub that accepts (and counts) everything without scheduling or
/// allocating — for pinning the tx-side duplication path.
class SinkInterface final : public net::Interface {
 public:
  bool enqueue(const net::Packet&) override {
    ++enqueued_;
    return true;
  }
  [[nodiscard]] std::size_t queue_length() const override { return 0; }
  void set_rx_handler(RxHandler) override {}

  std::uint64_t enqueued_ = 0;
};

/// Tagged-feed harness around one ReorderBuffer: records delivered
/// sequences and the winning tag of each delivery.
struct DedupHarness {
  explicit DedupHarness(sim::Simulator& sim, ReorderBuffer::Config cfg)
      : rb(sim, [this](const net::Packet& p, sim::Time) { out.push_back(p.seq); },
           cfg) {
    rb.set_win_listener(
        [this](const net::Packet& p, int tag) { wins.emplace_back(p.seq, tag); });
  }

  void feed(std::uint32_t seq, int tag, sim::Simulator& sim) {
    net::Packet p;
    p.seq = seq;
    rb.on_packet(p, sim.now(), tag);
    ++fed;
  }

  // Every fed copy must land in exactly one bucket — the accounting the
  // NanResult counters are built on.
  void expect_conservation() const {
    EXPECT_EQ(out.size() + rb.stragglers_dropped() + rb.duplicates_dropped() +
                  rb.buffered(),
              fed);
  }

  ReorderBuffer rb;
  std::vector<std::uint32_t> out;
  std::vector<std::pair<std::uint32_t, int>> wins;
  std::uint64_t fed = 0;
};

TEST(DiversityDedup, LateDuplicateAfterWinnerIsSuppressed) {
  // The losing copy of a duplicated packet arrives well after its winner
  // was delivered: suppressed as a duplicate, win reported exactly once,
  // with the tag of the medium that actually won.
  sim::Simulator sim;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(10);
  DedupHarness h(sim, cfg);

  h.feed(0, /*tag=*/0, sim);
  sim.run_until(sim::milliseconds(15));  // warm-up done, 0 delivered
  ASSERT_EQ(h.out, (std::vector<std::uint32_t>{0}));
  h.feed(0, /*tag=*/1, sim);  // the slow medium's copy limps in
  EXPECT_EQ(h.out, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(h.rb.duplicates_dropped(), 1u);
  EXPECT_EQ(h.rb.stragglers_dropped(), 0u);
  ASSERT_EQ(h.wins.size(), 1u);
  EXPECT_EQ(h.wins[0], (std::pair<std::uint32_t, int>{0u, 0}));
  h.expect_conservation();
}

TEST(DiversityDedup, DuplicateStraddlingReorderGap) {
  // A duplicate arrives while its sequence is still *buffered* behind an
  // open reorder gap: it must be suppressed immediately (not buffered
  // twice), and when the gap later times out the buffered original is
  // delivered with the tag of the first-arriving copy. The packet lost in
  // the gap stays a straggler — the two drop reasons never blur.
  sim::Simulator sim;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(10);
  DedupHarness h(sim, cfg);

  h.feed(0, /*tag=*/0, sim);
  sim.run_until(sim::milliseconds(15));  // locked, 0 delivered
  ASSERT_EQ(h.out, (std::vector<std::uint32_t>{0}));

  h.feed(2, /*tag=*/1, sim);  // gap at 1 starts blocking; 2 buffered (tag 1)
  h.feed(2, /*tag=*/0, sim);  // the other medium's copy, gap still open
  EXPECT_EQ(h.rb.duplicates_dropped(), 1u);
  EXPECT_EQ(h.rb.buffered(), 1u);  // one copy buffered, not two

  sim.run_until(sim.now() + sim::milliseconds(15));  // gap abandoned, 2 out
  ASSERT_EQ(h.out, (std::vector<std::uint32_t>{0, 2}));
  ASSERT_EQ(h.wins.size(), 2u);
  EXPECT_EQ(h.wins[1], (std::pair<std::uint32_t, int>{2u, 1}));  // first copy won

  h.feed(1, /*tag=*/0, sim);  // the gap packet finally arrives: straggler
  EXPECT_EQ(h.rb.stragglers_dropped(), 1u);
  EXPECT_EQ(h.rb.duplicates_dropped(), 1u);
  // The straggler's own duplicated copy: the abandoned entry was consumed
  // by the first late arrival, so the second copy is a duplicate *of the
  // straggler* — each abandoned sequence is charged exactly one straggler.
  h.feed(1, /*tag=*/1, sim);
  EXPECT_EQ(h.rb.stragglers_dropped(), 1u);
  EXPECT_EQ(h.rb.duplicates_dropped(), 2u);
  EXPECT_EQ(h.out, (std::vector<std::uint32_t>{0, 2}));
  h.expect_conservation();
}

TEST(DiversityDedup, ClearMidDuplicateForgetsDedupStateKeepsCounters) {
  // Adapter reset between a winner and its late loser: clear() wipes the
  // dedup state (the buffer relocks on whatever arrives next, so the stale
  // copy is delivered as a fresh flow start — documented semantics), while
  // the drop counters survive the reset for end-of-run accounting.
  sim::Simulator sim;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(10);
  DedupHarness h(sim, cfg);

  h.feed(0, /*tag=*/0, sim);
  sim.run_until(sim::milliseconds(15));
  h.feed(0, /*tag=*/1, sim);  // suppressed: dedup state intact
  ASSERT_EQ(h.rb.duplicates_dropped(), 1u);

  h.rb.clear();

  h.feed(0, /*tag=*/1, sim);  // a third copy, post-reset: relocks warm-up
  sim.run_until(sim.now() + sim::milliseconds(30));
  EXPECT_EQ(h.out, (std::vector<std::uint32_t>{0, 0}));  // delivered again
  EXPECT_EQ(h.rb.duplicates_dropped(), 1u);  // counter survived the clear
  EXPECT_EQ(h.rb.stragglers_dropped(), 0u);
  ASSERT_EQ(h.wins.size(), 2u);
  EXPECT_EQ(h.wins[1], (std::pair<std::uint32_t, int>{0u, 1}));
  h.expect_conservation();
}

TEST(HybridDevice, DiversityDuplicatesEveryPacketAndFastMediumWins) {
  sim::Simulator sim;
  PipeInterface fast(sim, sim::milliseconds(2));
  PipeInterface slow(sim, sim::milliseconds(8));
  HybridDevice tx(sim, {&fast, &slow},
                  std::make_unique<CapacityScheduler>(sim::Rng{7}));
  tx.set_capacities({80.0, 20.0});
  tx.set_default_mode(SplitMode::kDiversity);

  HybridDevice rx(sim, {&fast, &slow}, std::make_unique<RoundRobinScheduler>(2));
  net::OrderMeter order;
  std::uint64_t delivered = 0;
  rx.set_rx_handler([&](const net::Packet& p, sim::Time t) {
    order.on_packet(p, t);
    ++delivered;
  });
  rx.start_receiving();

  constexpr std::uint32_t kPackets = 300;
  constexpr std::uint32_t kBytes = 400;
  net::Packet p;
  p.size_bytes = kBytes;
  for (std::uint32_t s = 0; s < kPackets; ++s) {
    p.seq = s;
    p.created = sim.now();
    tx.enqueue(p);
    sim.run_until(sim.now() + sim::microseconds(100.0));
  }
  sim.run_until(sim.now() + sim::seconds(1));

  // Exactly one app-layer delivery per sequence, in order.
  EXPECT_EQ(delivered, kPackets);
  EXPECT_EQ(order.out_of_order(), 0u);
  // Both members carried the full flow; everything past the first copy is
  // accounted as redundancy spend.
  EXPECT_EQ(tx.sent_per_interface(0), kPackets);
  EXPECT_EQ(tx.sent_per_interface(1), kPackets);
  EXPECT_EQ(tx.diversity_dup_packets(), kPackets);
  EXPECT_EQ(tx.diversity_dup_bytes(), std::uint64_t{kPackets} * kBytes);
  // The 2 ms pipe wins every race against the 8 ms pipe; each losing copy
  // is suppressed before the app layer.
  EXPECT_EQ(rx.wins(0), kPackets);
  EXPECT_EQ(rx.wins(1), 0u);
  EXPECT_EQ(rx.suppressed_copies(), kPackets);
}

TEST(HybridDevice, SlowMediumWinCountedWhenFastCopyLoses) {
  // Flip the latencies mid-flow cheaply: send one packet where only the
  // "slow" member gets it first by making interface 1 the faster pipe.
  sim::Simulator sim;
  PipeInterface a(sim, sim::milliseconds(9));
  PipeInterface b(sim, sim::milliseconds(1));
  HybridDevice tx(sim, {&a, &b}, std::make_unique<RoundRobinScheduler>(2));
  tx.set_default_mode(SplitMode::kDiversity);
  HybridDevice rx(sim, {&a, &b}, std::make_unique<RoundRobinScheduler>(2));
  std::uint64_t delivered = 0;
  rx.set_rx_handler([&](const net::Packet&, sim::Time) { ++delivered; });
  rx.start_receiving();

  net::Packet p;
  for (std::uint32_t s = 0; s < 50; ++s) {
    p.seq = s;
    tx.enqueue(p);
    sim.run_until(sim.now() + sim::milliseconds(20));
  }
  sim.run_until(sim.now() + sim::seconds(1));
  EXPECT_EQ(delivered, 50u);
  EXPECT_EQ(rx.wins(0), 0u);
  EXPECT_EQ(rx.wins(1), 50u);
  EXPECT_EQ(rx.suppressed_copies(), 50u);
}

TEST(HybridDevice, PerFlowModeSelectsDuplicationAgainstLoadBalance) {
  // Duplication and load balancing coexist on one device, selected by flow
  // id: flow 7 is reliability-first (duplicated), everything else rides the
  // capacity split with a single copy.
  sim::Simulator sim;
  SinkInterface s0;
  SinkInterface s1;
  HybridDevice tx(sim, {&s0, &s1}, std::make_unique<RoundRobinScheduler>(2));
  tx.set_flow_mode(7, SplitMode::kDiversity);
  EXPECT_EQ(tx.mode_for(7), SplitMode::kDiversity);
  EXPECT_EQ(tx.mode_for(3), SplitMode::kLoadBalance);

  net::Packet p;
  p.size_bytes = 100;
  std::uint32_t seq = 0;
  for (int i = 0; i < 40; ++i) {
    p.flow_id = (i % 2 == 0) ? 7 : 3;
    p.seq = seq++;
    tx.enqueue(p);
  }
  // 20 duplicated packets (2 copies each) + 20 single copies.
  EXPECT_EQ(s0.enqueued_ + s1.enqueued_, 20u * 2 + 20u);
  EXPECT_EQ(tx.diversity_dup_packets(), 20u);
  EXPECT_EQ(tx.diversity_dup_bytes(), 20u * 100u);
  // The load-balance half alternated round-robin: 10 per member, plus the
  // 20 duplicated copies each member always gets.
  EXPECT_EQ(s0.enqueued_, 30u);
  EXPECT_EQ(s1.enqueued_, 30u);
}

TEST(AllocationPins, SteadyStateDedupIsAllocationFree) {
  // The receive-side hot path under duplication: in-order winner delivered
  // through the fast path, losing copy suppressed by counter bump — no heap
  // traffic once the flow is locked.
  sim::Simulator sim;
  std::uint64_t delivered = 0;
  ReorderBuffer::Config cfg;
  cfg.hold_timeout = sim::milliseconds(10);
  ReorderBuffer rb(sim, [&](const net::Packet&, sim::Time) { ++delivered; }, cfg);
  std::uint64_t wins = 0;
  rb.set_win_listener([&](const net::Packet&, int) { ++wins; });

  net::Packet p;
  p.seq = 0;
  rb.on_packet(p, sim.now(), 0);
  sim.run_until(sim::milliseconds(15));  // warm-up locked, seq 0 delivered
  rb.on_packet(p, sim.now(), 1);  // warm the duplicate-drop path's lazy
  ASSERT_EQ(delivered, 1u);       // counter registration outside the window
  ASSERT_EQ(rb.duplicates_dropped(), 1u);

  AllocationWindow window;
  for (std::uint32_t s = 1; s <= 512; ++s) {
    p.seq = s;
    rb.on_packet(p, sim.now(), 0);  // winner: in-order fast path
    rb.on_packet(p, sim.now(), 1);  // loser: duplicate drop
  }
  EXPECT_EQ(window.count(), 0u) << window.bytes() << " bytes allocated";
  EXPECT_EQ(delivered, 513u);
  EXPECT_EQ(wins, 513u);
  EXPECT_EQ(rb.duplicates_dropped(), 513u);
}

TEST(AllocationPins, SteadyStateDuplicationTxIsAllocationFree) {
  // The send-side hot path: per-packet fan-out to every member plus the
  // redundancy accounting must not touch the heap.
  sim::Simulator sim;
  SinkInterface s0;
  SinkInterface s1;
  HybridDevice tx(sim, {&s0, &s1}, std::make_unique<RoundRobinScheduler>(2));
  tx.set_default_mode(SplitMode::kDiversity);
  net::Packet p;
  p.size_bytes = 256;
  p.seq = 0;
  tx.enqueue(p);  // warm any lazy init outside the window

  AllocationWindow window;
  for (std::uint32_t s = 1; s <= 512; ++s) {
    p.seq = s;
    tx.enqueue(p);
  }
  EXPECT_EQ(window.count(), 0u) << window.bytes() << " bytes allocated";
  EXPECT_EQ(tx.diversity_dup_packets(), 513u);
  EXPECT_EQ(s0.enqueued_, 513u);
  EXPECT_EQ(s1.enqueued_, 513u);
}

}  // namespace
}  // namespace efd::hybrid

#include "src/fault/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fault/health.hpp"
#include "src/fault/injector.hpp"
#include "src/sim/simulator.hpp"
#include "tests/alloc_count.hpp"

namespace efd::fault {
namespace {

// --------------------------------------------------------------------------
// FaultPlan
// --------------------------------------------------------------------------

TEST(FaultPlan, KeepsSpecsSortedByOnset) {
  FaultPlan plan;
  plan.wifi_jam(sim::seconds(5), sim::seconds(1))
      .blackout(sim::seconds(1), sim::seconds(2))
      .modem_reset(sim::seconds(3));
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kPlcBlackout);
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::kModemReset);
  EXPECT_EQ(plan.specs()[2].kind, FaultKind::kWifiJam);
  EXPECT_EQ(plan.end(), sim::seconds(6));
}

TEST(FaultPlan, EqualOnsetsKeepInsertionOrder) {
  FaultPlan plan;
  plan.queue_stall(sim::seconds(1), sim::seconds(1), /*target=*/0)
      .queue_stall(sim::seconds(1), sim::seconds(1), /*target=*/1)
      .queue_stall(sim::seconds(1), sim::seconds(1), /*target=*/2);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(plan.specs()[i].target, i);
}

TEST(FaultPlan, RandomStormIsSeedDeterministic) {
  FaultPlan::StormConfig cfg;
  cfg.n_faults = 12;
  cfg.n_targets = 4;
  const FaultPlan a = FaultPlan::random_storm(sim::Rng{1234}, cfg);
  const FaultPlan b = FaultPlan::random_storm(sim::Rng{1234}, cfg);
  const FaultPlan c = FaultPlan::random_storm(sim::Rng{99}, cfg);
  ASSERT_EQ(a.size(), 12u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.specs()[i].onset, b.specs()[i].onset);
    EXPECT_EQ(a.specs()[i].duration, b.specs()[i].duration);
    EXPECT_EQ(a.specs()[i].kind, b.specs()[i].kind);
    EXPECT_EQ(a.specs()[i].target, b.specs()[i].target);
    EXPECT_EQ(a.specs()[i].severity, b.specs()[i].severity);
  }
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = !(a.specs()[i].onset == c.specs()[i].onset &&
                a.specs()[i].severity == c.specs()[i].severity);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, StormRespectsConfigBounds) {
  FaultPlan::StormConfig cfg;
  cfg.start = sim::seconds(2);
  cfg.horizon = sim::seconds(10);
  cfg.n_faults = 50;
  cfg.n_targets = 3;
  cfg.min_severity = 0.25;
  cfg.max_severity = 0.75;
  const FaultPlan plan = FaultPlan::random_storm(sim::Rng{7}, cfg);
  for (const FaultSpec& s : plan.specs()) {
    EXPECT_GE(s.onset, cfg.start);
    EXPECT_LT(s.onset, cfg.horizon);
    EXPECT_GE(s.target, 0);
    EXPECT_LT(s.target, 3);
    if (s.kind != FaultKind::kModemReset) {
      EXPECT_GE(s.duration, cfg.min_duration);
      EXPECT_LE(s.duration, cfg.max_duration);
      if (s.kind != FaultKind::kQueueStall) {
        EXPECT_GE(s.severity, 0.25);
        EXPECT_LE(s.severity, 0.75);
      }
    } else {
      EXPECT_EQ(s.duration, sim::Time{});
    }
  }
}

// --------------------------------------------------------------------------
// FaultInjector
// --------------------------------------------------------------------------

TEST(FaultInjector, FiresApplyAndClearHooksOnSchedule) {
  sim::Simulator sim;
  FaultInjector inj(sim);
  std::vector<std::string> events;
  inj.set_hooks(FaultKind::kPlcBlackout,
                {[&](const FaultSpec& s, sim::Time t) {
                   events.push_back("apply@" + std::to_string(t.ns()) +
                                    " sev=" + std::to_string(s.severity));
                 },
                 [&](const FaultSpec&, sim::Time t) {
                   events.push_back("clear@" + std::to_string(t.ns()));
                 }});
  FaultPlan plan;
  plan.blackout(sim::milliseconds(10), sim::milliseconds(5), 0, 1.0);
  inj.install(plan);

  sim.run_until(sim::milliseconds(12));
  EXPECT_EQ(inj.active_faults(), 1);
  sim.run_until(sim::milliseconds(20));
  EXPECT_EQ(inj.active_faults(), 0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "apply@10000000 sev=1.000000");
  EXPECT_EQ(events[1], "clear@15000000");
  EXPECT_EQ(inj.faults_applied(), 1u);
  EXPECT_EQ(inj.faults_cleared(), 1u);
}

TEST(FaultInjector, ZeroDurationFaultIsOneShot) {
  sim::Simulator sim;
  FaultInjector inj(sim);
  int applies = 0, clears = 0;
  inj.set_hooks(FaultKind::kModemReset,
                {[&](const FaultSpec&, sim::Time) { ++applies; },
                 [&](const FaultSpec&, sim::Time) { ++clears; }});
  FaultPlan plan;
  plan.modem_reset(sim::milliseconds(1));
  inj.install(plan);
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(applies, 1);
  EXPECT_EQ(clears, 0);
  EXPECT_EQ(inj.active_faults(), 0);  // one-shots never linger
}

TEST(FaultInjector, UnhookedKindsAreStillTraced) {
  sim::Simulator sim;
  FaultInjector inj(sim);
  FaultPlan plan;
  plan.wifi_jam(sim::milliseconds(2), sim::milliseconds(3));
  inj.install(plan);
  sim.run_until(sim::milliseconds(10));
  ASSERT_EQ(inj.trace().size(), 2u);
  EXPECT_EQ(inj.trace()[0].phase, FaultPhase::kApply);
  EXPECT_EQ(inj.trace()[1].phase, FaultPhase::kClear);
}

std::string run_storm_trace(std::uint64_t seed) {
  sim::Simulator sim;
  FaultInjector inj(sim);
  FaultPlan::StormConfig cfg;
  cfg.n_faults = 10;
  cfg.horizon = sim::seconds(20);
  cfg.n_targets = 2;
  inj.install(FaultPlan::random_storm(sim::Rng{seed}, cfg));
  sim.run_until(sim::seconds(30));
  return inj.trace_lines();
}

TEST(FaultInjector, StormTraceIsByteIdenticalAcrossRuns) {
  const std::string a = run_storm_trace(42);
  const std::string b = run_storm_trace(42);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run_storm_trace(43));
}

TEST(FaultInjector, RecordAppendsRecoveryEvents) {
  sim::Simulator sim;
  FaultInjector inj(sim);
  inj.record(FaultPhase::kTrip, FaultKind::kQueueStall, 1);
  inj.record(FaultPhase::kRecover, FaultKind::kQueueStall, 1);
  ASSERT_EQ(inj.trace().size(), 2u);
  EXPECT_EQ(inj.trace()[0].phase, FaultPhase::kTrip);
  EXPECT_EQ(inj.trace()[1].phase, FaultPhase::kRecover);
  const std::string lines = inj.trace_lines();
  EXPECT_NE(lines.find("trip"), std::string::npos);
  EXPECT_NE(lines.find("recover"), std::string::npos);
}

// --------------------------------------------------------------------------
// HealthMonitor
// --------------------------------------------------------------------------

/// Scripted probe subject: answers (or swallows) probes synchronously.
struct ProbeScript {
  HealthMonitor* mon = nullptr;
  bool answer_ok = true;
  bool swallow = false;  ///< drop the probe — the timeout will fail it
  std::uint64_t last_nonce = 0;
  std::uint64_t probes = 0;

  void operator()(std::uint64_t nonce) {
    ++probes;
    last_nonce = nonce;
    if (!swallow) mon->on_probe_result(nonce, answer_ok);
  }
};

HealthMonitor::Config fast_cfg() {
  HealthMonitor::Config cfg;
  cfg.probe_interval = sim::milliseconds(10);
  cfg.probe_timeout = sim::milliseconds(4);
  cfg.trip_threshold = 3;
  cfg.backoff_initial = sim::milliseconds(20);
  cfg.backoff_factor = 2.0;
  cfg.backoff_max = sim::milliseconds(100);
  cfg.jitter_frac = 0.1;
  cfg.recovery_successes = 2;
  return cfg;
}

TEST(HealthMonitor, StaysClosedWhileProbesSucceed) {
  sim::Simulator sim;
  ProbeScript script;
  HealthMonitor mon(sim, sim::Rng{1}, fast_cfg(),
                    [&](std::uint64_t n) { script(n); });
  script.mon = &mon;
  mon.start();
  sim.run_until(sim::milliseconds(105));
  EXPECT_EQ(mon.state(), HealthMonitor::State::kClosed);
  EXPECT_TRUE(mon.healthy());
  EXPECT_EQ(script.probes, 10u);
  EXPECT_EQ(mon.trips(), 0u);
}

TEST(HealthMonitor, TripsAfterConsecutiveTimeouts) {
  sim::Simulator sim;
  ProbeScript script;
  script.swallow = true;
  HealthMonitor mon(sim, sim::Rng{1}, fast_cfg(),
                    [&](std::uint64_t n) { script(n); });
  script.mon = &mon;
  std::vector<HealthMonitor::State> states;
  mon.set_listener([&](HealthMonitor::State s, sim::Time) { states.push_back(s); });
  mon.start();
  // Each cycle is probe + 4 ms timeout + 10 ms rearm: failures land at
  // 14/28/42 ms, and the third one crosses trip_threshold = 3.
  sim.run_until(sim::milliseconds(41));
  EXPECT_EQ(mon.state(), HealthMonitor::State::kClosed);
  sim.run_until(sim::milliseconds(43));
  EXPECT_EQ(mon.state(), HealthMonitor::State::kOpen);
  EXPECT_FALSE(mon.healthy());
  EXPECT_EQ(mon.trips(), 1u);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0], HealthMonitor::State::kOpen);
}

TEST(HealthMonitor, OpenReprobesWithGrowingBackoff) {
  sim::Simulator sim;
  ProbeScript script;
  script.swallow = true;
  HealthMonitor mon(sim, sim::Rng{1}, fast_cfg(),
                    [&](std::uint64_t n) { script(n); });
  script.mon = &mon;
  mon.start();
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(mon.state(), HealthMonitor::State::kOpen);
  // Backoff doubles to the 100 ms cap (+ ≤10 % jitter): over ~966 ms of
  // open time that bounds the reprobe count well below the closed-state
  // 10 ms cadence.
  EXPECT_GE(script.probes, 8u);
  EXPECT_LE(script.probes, 18u);
  EXPECT_GT(mon.probes_failed(), 8u);
}

TEST(HealthMonitor, RecoversThroughHalfOpen) {
  sim::Simulator sim;
  ProbeScript script;
  script.swallow = true;
  HealthMonitor mon(sim, sim::Rng{1}, fast_cfg(),
                    [&](std::uint64_t n) { script(n); });
  script.mon = &mon;
  std::vector<HealthMonitor::State> states;
  mon.set_listener([&](HealthMonitor::State s, sim::Time) { states.push_back(s); });
  mon.start();
  sim.run_until(sim::milliseconds(45));
  ASSERT_EQ(mon.state(), HealthMonitor::State::kOpen);
  // The link comes back: next reprobe succeeds, a second success closes.
  script.swallow = false;
  script.answer_ok = true;
  sim.run_until(sim::milliseconds(120));
  EXPECT_EQ(mon.state(), HealthMonitor::State::kClosed);
  EXPECT_EQ(mon.recoveries(), 1u);
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0], HealthMonitor::State::kOpen);
  EXPECT_EQ(states[1], HealthMonitor::State::kHalfOpen);
  EXPECT_EQ(states[2], HealthMonitor::State::kClosed);
}

TEST(HealthMonitor, HalfOpenFailureReopensWithDeeperBackoff) {
  sim::Simulator sim;
  ProbeScript script;
  script.swallow = true;
  HealthMonitor mon(sim, sim::Rng{1}, fast_cfg(),
                    [&](std::uint64_t n) { script(n); });
  script.mon = &mon;
  mon.start();
  sim.run_until(sim::milliseconds(45));
  ASSERT_EQ(mon.state(), HealthMonitor::State::kOpen);
  // One success puts it half-open; then the link dies again.
  script.swallow = false;
  script.answer_ok = true;
  const std::uint64_t before = script.probes;
  while (mon.state() != HealthMonitor::State::kHalfOpen &&
         sim.now() < sim::seconds(1)) {
    sim.run_until(sim.now() + sim::milliseconds(1));
  }
  ASSERT_EQ(mon.state(), HealthMonitor::State::kHalfOpen);
  EXPECT_GT(script.probes, before);
  script.answer_ok = false;
  sim.run_until(sim.now() + sim::milliseconds(15));
  EXPECT_EQ(mon.state(), HealthMonitor::State::kOpen);
  EXPECT_EQ(mon.recoveries(), 0u);
}

TEST(HealthMonitor, OpenStateTimeoutsClampBackoffAtTheCap) {
  // Regression: the probe-timeout path used to deepen the backoff stage on
  // every failed reprobe while already open, so a long outage pushed the
  // exponent (and the next reprobe delay) without bound. The stage must
  // saturate at the first value whose delay hits backoff_max.
  sim::Simulator sim;
  std::vector<sim::Time> probe_times;
  ProbeScript script;
  script.swallow = true;
  HealthMonitor mon(sim, sim::Rng{1}, fast_cfg(), [&](std::uint64_t n) {
    probe_times.push_back(sim.now());
    script(n);
  });
  script.mon = &mon;
  mon.start();
  sim.run_until(sim::seconds(5));
  ASSERT_EQ(mon.state(), HealthMonitor::State::kOpen);
  EXPECT_GT(mon.probes_failed(), 20u);
  // fast_cfg: 20 ms doubling against a 100 ms cap saturates at stage 3
  // (20 -> 40 -> 80 -> 160 ms, clamped to 100).
  EXPECT_LE(mon.backoff_stage(), 3);
  // The observable contract: late reprobe gaps stay bounded by
  // backoff_max (+ jitter) + probe_timeout instead of growing each trip.
  const HealthMonitor::Config cfg = fast_cfg();
  const std::int64_t bound =
      static_cast<std::int64_t>(static_cast<double>(cfg.backoff_max.ns()) *
                                (1.0 + cfg.jitter_frac)) +
      cfg.probe_timeout.ns();
  ASSERT_GT(probe_times.size(), 12u);
  for (std::size_t i = probe_times.size() - 8; i < probe_times.size(); ++i) {
    EXPECT_LE(probe_times[i].ns() - probe_times[i - 1].ns(), bound) << "i=" << i;
  }
}

TEST(HealthMonitor, StaleNonceIsIgnored) {
  sim::Simulator sim;
  ProbeScript script;
  script.swallow = true;  // keep the real probes unanswered
  HealthMonitor mon(sim, sim::Rng{1}, fast_cfg(),
                    [&](std::uint64_t n) { script(n); });
  script.mon = &mon;
  mon.start();
  sim.run_until(sim::milliseconds(11));  // one probe in flight
  const std::uint64_t live_nonce = script.last_nonce;
  mon.on_probe_result(live_nonce + 1000, true);  // wrong nonce
  EXPECT_EQ(mon.stale_results(), 1u);
  mon.on_probe_result(live_nonce, true);  // the real one still counts
  EXPECT_EQ(mon.state(), HealthMonitor::State::kClosed);
  EXPECT_EQ(mon.consecutive_failures(), 0);
  // A result after the timeout already failed the probe is stale too.
  sim.run_until(sim::milliseconds(25));
  mon.on_probe_result(script.last_nonce, true);
  sim.run_until(sim::milliseconds(26));
  mon.on_probe_result(script.last_nonce, true);  // answered twice: second is stale
  EXPECT_GE(mon.stale_results(), 2u);
}

TEST(HealthMonitor, DataPathReportsFeedTheSameBreaker) {
  sim::Simulator sim;
  HealthMonitor::Config cfg = fast_cfg();
  HealthMonitor mon(sim, sim::Rng{1}, cfg, [](std::uint64_t) {});
  for (int i = 0; i < cfg.trip_threshold; ++i) mon.report_failure();
  EXPECT_EQ(mon.state(), HealthMonitor::State::kOpen);
  mon.report_success();
  EXPECT_EQ(mon.state(), HealthMonitor::State::kHalfOpen);
  mon.report_success();
  EXPECT_EQ(mon.state(), HealthMonitor::State::kClosed);
}

TEST(HealthMonitor, StopDisarmsAndStartResumes) {
  sim::Simulator sim;
  ProbeScript script;
  HealthMonitor mon(sim, sim::Rng{1}, fast_cfg(),
                    [&](std::uint64_t n) { script(n); });
  script.mon = &mon;
  mon.start();
  sim.run_until(sim::milliseconds(25));
  const std::uint64_t at_stop = script.probes;
  mon.stop();
  sim.run_until(sim::milliseconds(200));
  EXPECT_EQ(script.probes, at_stop);
  mon.start();
  sim.run_until(sim::milliseconds(250));
  EXPECT_GT(script.probes, at_stop);
}

TEST(HealthMonitor, TransitionTimesAreSeedDeterministic) {
  // Two monitors, same seed, same scripted outage: byte-identical
  // transition schedules (the jitter comes from the seeded Rng).
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    ProbeScript script;
    script.swallow = true;
    HealthMonitor mon(sim, sim::Rng{seed}, fast_cfg(),
                      [&](std::uint64_t n) { script(n); });
    script.mon = &mon;
    std::vector<std::int64_t> times;
    mon.set_listener(
        [&](HealthMonitor::State, sim::Time t) { times.push_back(t.ns()); });
    mon.start();
    sim.run_until(sim::milliseconds(500));  // trip + several backed-off reprobes
    script.swallow = false;
    sim.run_until(sim::seconds(1));  // recover
    return times;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

// --------------------------------------------------------------------------
// Zero-allocation pins (satellite: steady-state hot paths)
// --------------------------------------------------------------------------

TEST(FaultAllocation, MonitorSteadyStateIsAllocationFree) {
  sim::Simulator sim;
  ProbeScript script;
  HealthMonitor mon(sim, sim::Rng{1}, fast_cfg(),
                    [&](std::uint64_t n) { script(n); });
  script.mon = &mon;
  mon.start();
  // Warm up: first probe cycles touch obs registries and the event slab.
  sim.run_until(sim::milliseconds(100));
  const testsupport::AllocationWindow window;
  sim.run_until(sim::milliseconds(1100));  // ~100 probe round trips
  EXPECT_EQ(window.count(), 0u) << "healthy-path probing must not allocate";
  EXPECT_GE(script.probes, 100u);
}

TEST(FaultAllocation, InjectorFiringIsAllocationFree) {
  sim::Simulator sim;
  FaultInjector inj(sim);
  int applies = 0;
  inj.set_hooks(FaultKind::kQueueStall,
                {[&](const FaultSpec&, sim::Time) { ++applies; },
                 [&](const FaultSpec&, sim::Time) {}});
  // Warm-up fault: first fire registers the obs counters.
  FaultPlan warm;
  warm.queue_stall(sim::milliseconds(1), sim::milliseconds(1));
  inj.install(warm);
  sim.run_until(sim::milliseconds(5));
  FaultPlan plan;
  for (int i = 0; i < 50; ++i) {
    plan.queue_stall(sim::milliseconds(10 + 10 * i), sim::milliseconds(5));
  }
  // install() reserves trace and schedule capacity up front; firing the
  // events afterwards must not touch the heap.
  inj.install(plan);
  const testsupport::AllocationWindow window;
  sim.run_until(sim::seconds(2));
  EXPECT_EQ(window.count(), 0u) << "fault apply/clear dispatch must not allocate";
  EXPECT_EQ(applies, 51);
  EXPECT_EQ(inj.trace().size(), 102u);
}

}  // namespace
}  // namespace efd::fault

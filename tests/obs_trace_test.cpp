// EventTracer: ring buffering, JSONL flush format, drop accounting, and the
// disabled path recording nothing.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/obs.hpp"

namespace efd {
namespace {

// Flush the tracer into a tmpfile and return the lines.
std::vector<std::string> flush_lines(obs::EventTracer& tracer) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  tracer.flush_jsonl(f);
  std::rewind(f);
  std::vector<std::string> lines;
  std::string current;
  int c = 0;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<char>(c));
    }
  }
  std::fclose(f);
  return lines;
}

class ObsTraceTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::EventTracer::instance().disable(); }
};

TEST_F(ObsTraceTest, DisabledTracerRecordsNothing) {
  auto& tracer = obs::EventTracer::instance();
  ASSERT_FALSE(tracer.enabled());
  tracer.instant("test", "ignored");
  {
    obs::ScopedSpan span("test", "ignored_span");
  }
  EXPECT_EQ(tracer.buffered(), 0u);
  EXPECT_TRUE(flush_lines(tracer).empty());
}

TEST_F(ObsTraceTest, SpansAndInstantsFlushAsJsonl) {
  auto& tracer = obs::EventTracer::instance();
  tracer.enable();
  tracer.instant("cat_a", "instant_one");
  {
    obs::ScopedSpan span("cat_b", "span_one");
  }
  const auto lines = flush_lines(tracer);
  ASSERT_EQ(lines.size(), 2u);
  // Instant first (recorded before the span completed).
  EXPECT_NE(lines[0].find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\": \"instant_one\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"cat\": \"cat_a\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\": \"span_one\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"dur_us\""), std::string::npos);
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ts_us\""), std::string::npos);
    EXPECT_NE(line.find("\"tid\""), std::string::npos);
  }
}

TEST_F(ObsTraceTest, RingOverwritesOldestAndCountsDrops) {
  auto& tracer = obs::EventTracer::instance();
  tracer.enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    // Distinct static names so we can tell which events survived.
    static const char* const names[] = {"e0", "e1", "e2", "e3", "e4",
                                        "e5", "e6", "e7", "e8", "e9"};
    tracer.instant("ring", names[i]);
  }
  EXPECT_EQ(tracer.buffered(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto lines = flush_lines(tracer);
  ASSERT_EQ(lines.size(), 4u);
  // The four newest events survive, oldest-first.
  EXPECT_NE(lines[0].find("\"e6\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"e9\""), std::string::npos);
}

TEST_F(ObsTraceTest, FlushDrainsTheBuffer) {
  auto& tracer = obs::EventTracer::instance();
  tracer.enable();
  tracer.instant("drain", "one");
  EXPECT_EQ(flush_lines(tracer).size(), 1u);
  EXPECT_EQ(tracer.buffered(), 0u);
  EXPECT_TRUE(flush_lines(tracer).empty());
}

TEST_F(ObsTraceTest, MidSpanDisableDropsTheSpan) {
  auto& tracer = obs::EventTracer::instance();
  tracer.enable();
  {
    obs::ScopedSpan span("test", "early_span");
    tracer.instant("test", "mid");
    // Disabling mid-span drops the span at destruction: only events from
    // the enabled window survive, and nothing crashes.
    tracer.disable();
  }
  EXPECT_EQ(tracer.buffered(), 1u);
}

}  // namespace
}  // namespace efd

#include "src/core/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace efd::core {
namespace {

std::vector<BleSample> sample_trace() {
  return {{sim::seconds(0.0), 120.5},
          {sim::milliseconds(50), 121.25},
          {sim::milliseconds(100), 119.875}};
}

TEST(TraceIo, WriteHasHeaderAndRows) {
  std::ostringstream out;
  write_ble_trace_csv(out, sample_trace());
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("t_s,ble_mbps\n", 0), 0u);
  EXPECT_NE(text.find("0.050000,121.250"), std::string::npos);
}

TEST(TraceIo, RoundTrip) {
  std::ostringstream out;
  const auto original = sample_trace();
  write_ble_trace_csv(out, original);
  std::istringstream in(out.str());
  const auto parsed = read_ble_trace_csv(in);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_NEAR(parsed[i].t.seconds(), original[i].t.seconds(), 1e-6);
    EXPECT_NEAR(parsed[i].ble_mbps, original[i].ble_mbps, 1e-3);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::ostringstream out;
  write_ble_trace_csv(out, {});
  std::istringstream in(out.str());
  EXPECT_TRUE(read_ble_trace_csv(in).empty());
}

TEST(TraceIo, MissingHeaderThrows) {
  std::istringstream in("1.0,2.0\n");
  EXPECT_THROW((void)read_ble_trace_csv(in), std::runtime_error);
}

TEST(TraceIo, MalformedLineThrows) {
  std::istringstream in("t_s,ble_mbps\n1.0;2.0\n");
  EXPECT_THROW((void)read_ble_trace_csv(in), std::runtime_error);
}

TEST(TraceIo, BadNumberThrows) {
  std::istringstream in("t_s,ble_mbps\nabc,def\n");
  EXPECT_THROW((void)read_ble_trace_csv(in), std::runtime_error);
}

TEST(TraceIo, BlankLinesIgnored) {
  std::istringstream in("t_s,ble_mbps\n1.0,2.0\n\n2.0,3.0\n");
  EXPECT_EQ(read_ble_trace_csv(in).size(), 2u);
}

TEST(TraceIo, SofRecordsCsv) {
  plc::SofRecord r;
  r.start = sim::milliseconds(1.5);
  r.end = sim::milliseconds(2.5);
  r.src = 3;
  r.dst = 7;
  r.slot = 4;
  r.ble_mbps = 133.25;
  r.n_pbs = 12;
  r.n_symbols = 9;
  r.robo = false;
  r.sound = true;
  r.broadcast = false;
  std::ostringstream out;
  write_sof_records_csv(out, {r});
  const std::string text = out.str();
  EXPECT_NE(text.find("3,7,4,133.250,12,9,0,1,0"), std::string::npos);
  EXPECT_EQ(text.rfind("t_start_s,", 0), 0u);
}

TEST(TraceIo, ToStringMatchesStream) {
  const auto trace = sample_trace();
  std::ostringstream out;
  write_ble_trace_csv(out, trace);
  EXPECT_EQ(ble_trace_to_string(trace), out.str());
}

}  // namespace
}  // namespace efd::core

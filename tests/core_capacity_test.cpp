#include "src/core/capacity.hpp"

#include <gtest/gtest.h>

#include "src/core/guidelines.hpp"

namespace efd::core {
namespace {

TEST(BleCapacityEstimator, DefaultFitMatchesPaper) {
  const BleCapacityEstimator est;
  EXPECT_DOUBLE_EQ(est.fit().slope, 1.7);
  EXPECT_DOUBLE_EQ(est.fit().intercept, -0.65);
}

TEST(BleCapacityEstimator, RoundTrip) {
  const BleCapacityEstimator est;
  for (double t = 5.0; t <= 90.0; t += 5.0) {
    const double ble = est.ble_from_throughput(t);
    EXPECT_NEAR(est.throughput_from_ble(ble), t, 1e-9);
  }
}

TEST(BleCapacityEstimator, NeverNegative) {
  const BleCapacityEstimator est;
  EXPECT_DOUBLE_EQ(est.throughput_from_ble(-10.0), 0.0);
  EXPECT_GE(est.throughput_from_ble(0.0), 0.0);
}

TEST(BleCapacityEstimator, CustomFit) {
  const BleCapacityEstimator est({2.0, 1.0});
  EXPECT_DOUBLE_EQ(est.throughput_from_ble(11.0), 5.0);
}

TEST(Guidelines, Table3IsComplete) {
  const auto g = guidelines();
  ASSERT_EQ(g.size(), 7u);  // seven policies in the paper's Table 3
  for (const auto& row : g) {
    EXPECT_FALSE(row.policy.empty());
    EXPECT_FALSE(row.guideline.empty());
    EXPECT_FALSE(row.paper_section.empty());
  }
  EXPECT_EQ(g[0].policy, "Metrics");
  EXPECT_EQ(g[1].policy, "Unicast probing only");
}

struct MmPollerFixture : ::testing::Test {
  sim::Simulator sim;
  grid::PowerGrid grid;
  std::unique_ptr<plc::PlcChannel> channel;
  std::unique_ptr<plc::PlcNetwork> network;

  void SetUp() override {
    const int a = grid.add_node("a");
    const int b = grid.add_node("b");
    grid.add_cable(a, b, 10.0);
    channel = std::make_unique<plc::PlcChannel>(grid, plc::PhyParams::hpav());
    channel->attach_station(0, a);
    channel->attach_station(1, b);
    network = std::make_unique<plc::PlcNetwork>(sim, *channel, sim::Rng{5},
                                                plc::PlcNetwork::Config{});
    network->add_station(0, a);
    network->add_station(1, b);
  }
};

TEST_F(MmPollerFixture, RateLimitsTo50ms) {
  MmPoller poller(*network, 0, 1);
  (void)poller.average_ble_mbps(sim::seconds(1.00));
  (void)poller.average_ble_mbps(sim::seconds(1.01));
  (void)poller.average_ble_mbps(sim::seconds(1.04));
  EXPECT_EQ(poller.mm_count(), 1u);  // two calls served from cache
  (void)poller.average_ble_mbps(sim::seconds(1.06));
  EXPECT_EQ(poller.mm_count(), 2u);
}

TEST_F(MmPollerFixture, BleAndPberrShareOneQuery) {
  MmPoller poller(*network, 0, 1);
  (void)poller.average_ble_mbps(sim::seconds(2.0));
  (void)poller.pberr(sim::seconds(2.0));
  EXPECT_EQ(poller.mm_count(), 1u);
}

TEST_F(MmPollerFixture, ReflectsEstimatorState) {
  auto& est = network->estimator(1, 0);
  est.on_sound_frame(sim::seconds(1));
  MmPoller poller(*network, 0, 1);
  EXPECT_NEAR(poller.average_ble_mbps(sim::seconds(1.1)), est.average_ble_mbps(),
              1e-9);
}

}  // namespace
}  // namespace efd::core

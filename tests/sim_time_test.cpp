#include "src/sim/time.hpp"

#include <gtest/gtest.h>

namespace efd::sim {
namespace {

TEST(Time, DefaultIsZero) {
  EXPECT_EQ(Time{}.ns(), 0);
  EXPECT_DOUBLE_EQ(Time{}.seconds(), 0.0);
}

TEST(Time, UnitConversions) {
  EXPECT_EQ(seconds(1.0).ns(), 1'000'000'000);
  EXPECT_EQ(milliseconds(1.0).ns(), 1'000'000);
  EXPECT_EQ(microseconds(1.0).ns(), 1'000);
  EXPECT_EQ(minutes(1.0).ns(), 60'000'000'000LL);
  EXPECT_EQ(hours(1.0).ns(), 3'600'000'000'000LL);
  EXPECT_EQ(days(1.0).ns(), 86'400'000'000'000LL);
}

TEST(Time, RoundTripSeconds) {
  const Time t = seconds(123.456);
  EXPECT_NEAR(t.seconds(), 123.456, 1e-9);
  EXPECT_NEAR(t.ms(), 123456.0, 1e-6);
  EXPECT_NEAR(t.us(), 123456000.0, 1e-3);
}

TEST(Time, Arithmetic) {
  const Time a = seconds(2.0);
  const Time b = milliseconds(500);
  EXPECT_EQ((a + b).ns(), 2'500'000'000);
  EXPECT_EQ((a - b).ns(), 1'500'000'000);
  EXPECT_EQ((b * 4).ns(), 2'000'000'000);
  EXPECT_EQ((4 * b).ns(), 2'000'000'000);
  EXPECT_EQ(a / b, 4);
}

TEST(Time, CompoundAssignment) {
  Time t = seconds(1.0);
  t += milliseconds(250);
  EXPECT_EQ(t.ns(), 1'250'000'000);
  t -= milliseconds(250);
  EXPECT_EQ(t.ns(), 1'000'000'000);
}

TEST(Time, Comparison) {
  EXPECT_LT(milliseconds(1), milliseconds(2));
  EXPECT_LE(milliseconds(2), milliseconds(2));
  EXPECT_GT(seconds(1), milliseconds(999));
  EXPECT_EQ(seconds(1), milliseconds(1000));
}

TEST(Time, UntilSaturatesAtZero) {
  const Time a = seconds(5);
  const Time b = seconds(3);
  EXPECT_EQ(b.until(a), seconds(2));
  EXPECT_EQ(a.until(b), Time{});
}

TEST(Time, StrPicksScale) {
  EXPECT_EQ(seconds(1.5).str(), "1.500s");
  EXPECT_EQ(milliseconds(2.25).str(), "2.250ms");
  EXPECT_EQ(microseconds(3.5).str(), "3.500us");
  EXPECT_EQ(Time{12}.str(), "12ns");
}

TEST(Time, NegativeValuesFormat) {
  EXPECT_EQ((Time{} - seconds(1)).str(), "-1.000s");
}

class TimeScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(TimeScaleSweep, SecondsRoundTrip) {
  const double s = GetParam();
  EXPECT_NEAR(seconds(s).seconds(), s, 1e-9 * std::max(1.0, s));
}

TEST_P(TimeScaleSweep, AdditionIsConsistentWithScaling) {
  const double s = GetParam();
  const Time t = seconds(s);
  EXPECT_EQ(t + t, t * 2);
}

INSTANTIATE_TEST_SUITE_P(Scales, TimeScaleSweep,
                         ::testing::Values(1e-6, 1e-3, 0.02, 1.0, 60.0, 3600.0,
                                           86400.0, 1209600.0));

}  // namespace
}  // namespace efd::sim

// efd::obs metrics: id stability, lock-free shard merge correctness under
// ParallelRunner fan-out, snapshot determinism for deterministic workloads,
// histogram bucketing, and the runtime disable path.
#include <gtest/gtest.h>

#include <string>

#include "src/grid/appliance.hpp"
#include "src/grid/power_grid.hpp"
#include "src/obs/obs.hpp"
#include "src/plc/channel.hpp"
#include "src/plc/channel_estimator.hpp"
#include "src/testbed/parallel_runner.hpp"

namespace efd {
namespace {

class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::MetricsRegistry::instance().reset();
  }
  void TearDown() override { obs::set_enabled(true); }
};

TEST_F(ObsMetricsTest, CounterIdIsStableAcrossLookups) {
  auto& reg = obs::MetricsRegistry::instance();
  const obs::CounterId a = reg.counter_id("test.obs.id_stability");
  const obs::CounterId b = reg.counter_id("test.obs.id_stability");
  EXPECT_GE(a.index, 0);
  EXPECT_EQ(a.index, b.index);
  // A different name gets a different slot.
  EXPECT_NE(reg.counter_id("test.obs.id_stability2").index, a.index);
}

TEST_F(ObsMetricsTest, CountersSumAcrossParallelWorkers) {
  constexpr int kTasks = 64;
  constexpr int kIncrementsPerTask = 1000;
  const testbed::ParallelRunner pool(4);
  pool.run(kTasks, [](int) {
    for (int k = 0; k < kIncrementsPerTask; ++k) {
      EFD_COUNTER_INC("test.obs.fanout_counter");
    }
  });
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter("test.obs.fanout_counter"),
            static_cast<std::uint64_t>(kTasks) * kIncrementsPerTask);
}

TEST_F(ObsMetricsTest, HistogramsMergeAcrossParallelWorkers) {
  constexpr int kTasks = 32;
  const testbed::ParallelRunner pool(4);
  pool.run(kTasks, [](int i) {
    // Every task observes its own index: the merged histogram must hold
    // exactly one observation per task regardless of which worker ran it.
    EFD_HISTO_OBSERVE("test.obs.fanout_histo", i);
  });
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  const obs::HistogramData* h = snap.histogram("test.obs.fanout_histo");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<std::uint64_t>(kTasks));
  EXPECT_DOUBLE_EQ(h->sum, kTasks * (kTasks - 1) / 2.0);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : h->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h->count);
}

TEST_F(ObsMetricsTest, MergeIsIndependentOfWorkerCount) {
  // Note: not a whole-snapshot diff — the runner itself records its worker
  // count (testbed.workers), which legitimately differs between runs.
  struct Merged {
    std::uint64_t counter;
    std::string histo_json;
  };
  const auto workload = [](int workers) {
    obs::MetricsRegistry::instance().reset();
    const testbed::ParallelRunner pool(workers);
    pool.run(40, [](int i) {
      EFD_COUNTER_ADD("test.obs.indep_counter", i);
      EFD_HISTO_OBSERVE("test.obs.indep_histo", i % 7);
    });
    const auto snap = obs::MetricsRegistry::instance().snapshot();
    const obs::HistogramData* h = snap.histogram("test.obs.indep_histo");
    Merged m{snap.counter("test.obs.indep_counter"), ""};
    if (h != nullptr) {
      m.histo_json = std::to_string(h->count) + "/" + std::to_string(h->sum);
      for (const std::uint64_t b : h->buckets) {
        m.histo_json += "," + std::to_string(b);
      }
    }
    return m;
  };
  const Merged serial = workload(1);
  const Merged parallel = workload(4);
  EXPECT_EQ(serial.counter, 40u * 39u / 2u);
  EXPECT_EQ(serial.counter, parallel.counter);
  EXPECT_EQ(serial.histo_json, parallel.histo_json);
  EXPECT_FALSE(serial.histo_json.empty());
}

TEST_F(ObsMetricsTest, SnapshotIsDeterministicForFixedSeeds) {
  // A real instrumented workload (channel estimator over a small grid):
  // identical seeds must produce byte-identical snapshots, counters and
  // histogram cells included — the property CI diffs rely on. The profiler
  // is runtime-disabled here: its embedded timings are wall-clock based and
  // can never be byte-stable.
  const bool prof_was_enabled = obs::prof_enabled();
  obs::set_prof_enabled(false);
  const auto run_workload = [] {
    obs::MetricsRegistry::instance().reset();
    obs::ProfileRegistry::instance().reset();
    grid::PowerGrid pg;
    const int a = pg.add_node("a");
    const int j = pg.add_node("j");
    const int b = pg.add_node("b");
    pg.add_cable(a, j, 12.0);
    pg.add_cable(j, b, 10.0);
    for (std::uint64_t s = 0; s < 4; ++s) {
      pg.add_appliance(grid::make_appliance(grid::ApplianceType::kWorkstation,
                                            s < 2 ? j : b, s));
    }
    plc::PlcChannel channel(pg, plc::PhyParams::hpav());
    channel.attach_station(0, a);
    channel.attach_station(1, b);
    plc::ChannelEstimator est(channel, 0, 1, sim::Rng{42}, {});
    sim::Time now = sim::days(1);
    est.on_sound_frame(now);
    for (int k = 0; k < 200; ++k) {
      now += sim::milliseconds(3);
      est.on_frame_received(channel.slot_at(now), 50, k % 17 == 0 ? 1 : 0, 40,
                            now);
    }
    return obs::snapshot_json();
  };
  const std::string first = run_workload();
  const std::string second = run_workload();
  obs::set_prof_enabled(prof_was_enabled);
  EXPECT_EQ(first, second);
  // The workload actually exercised the instrumentation.
  EXPECT_NE(first.find("plc.est.tonemap_updates"), std::string::npos);
  EXPECT_NE(first.find("plc.est.pb_errors"), std::string::npos);
  EXPECT_NE(first.find("grid.atten.queries"), std::string::npos);
}

TEST_F(ObsMetricsTest, GaugeReadsBackLastValueSingleThreaded) {
  EFD_GAUGE_SET("test.obs.gauge", 3.5);
  EFD_GAUGE_SET("test.obs.gauge", 7.25);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_DOUBLE_EQ(snap.gauge("test.obs.gauge"), 7.25);
}

TEST_F(ObsMetricsTest, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(obs::histogram_bucket(0.0), 0);
  EXPECT_EQ(obs::histogram_bucket(0.5), 0);
  EXPECT_EQ(obs::histogram_bucket(-3.0), 0);
  EXPECT_EQ(obs::histogram_bucket(1.0), 1);   // [1, 2)
  EXPECT_EQ(obs::histogram_bucket(1.9), 1);
  EXPECT_EQ(obs::histogram_bucket(2.0), 2);   // [2, 4)
  EXPECT_EQ(obs::histogram_bucket(3.0), 2);
  EXPECT_EQ(obs::histogram_bucket(4.0), 3);   // [4, 8)
  EXPECT_EQ(obs::histogram_bucket(1024.0), 11);
  EXPECT_EQ(obs::histogram_bucket(1e30), obs::kHistogramBuckets - 1);
}

TEST_F(ObsMetricsTest, DroppedIdsAreSafeNoOps) {
  obs::counter_add(obs::CounterId{-1}, 5);
  obs::gauge_set(obs::GaugeId{-1}, 1.0);
  obs::histogram_observe(obs::HistogramId{-1}, 1.0);
  // Nothing to assert beyond "did not crash / did not corrupt a slot":
  // snapshot still works.
  (void)obs::MetricsRegistry::instance().snapshot();
}

TEST_F(ObsMetricsTest, ResetZeroesEveryCell) {
  EFD_COUNTER_ADD("test.obs.reset_counter", 9);
  EFD_GAUGE_SET("test.obs.reset_gauge", 2.0);
  EFD_HISTO_OBSERVE("test.obs.reset_histo", 3.0);
  obs::MetricsRegistry::instance().reset();
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter("test.obs.reset_counter"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("test.obs.reset_gauge"), 0.0);
  const obs::HistogramData* h = snap.histogram("test.obs.reset_histo");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 0u);
}

TEST_F(ObsMetricsTest, RuntimeDisableStopsRecording) {
  EFD_COUNTER_INC("test.obs.disable_counter");
  obs::set_enabled(false);
  for (int i = 0; i < 100; ++i) {
    EFD_COUNTER_INC("test.obs.disable_counter");
  }
  obs::set_enabled(true);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter("test.obs.disable_counter"), 1u);
}

TEST_F(ObsMetricsTest, SnapshotJsonHasTheThreeSections) {
  EFD_COUNTER_INC("test.obs.json_counter");
  EFD_GAUGE_SET("test.obs.json_gauge", 1.5);
  EFD_HISTO_OBSERVE("test.obs.json_histo", 4.0);
  const std::string json = obs::snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json_counter\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json_gauge\": 1.5"), std::string::npos);
  // Histogram entry carries count/sum/buckets.
  EXPECT_NE(json.find("\"test.obs.json_histo\": {\"count\": 1, \"sum\": 4"),
            std::string::npos);
}

}  // namespace
}  // namespace efd

#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace efd::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time{});
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(seconds(3), [&] { order.push_back(3); });
  sim.at(seconds(1), [&] { order.push_back(1); });
  sim.at(seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), seconds(3));
}

TEST(Simulator, SameInstantIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator sim;
  Time fired{};
  sim.at(seconds(5), [&] {
    sim.after(seconds(2), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, seconds(7));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.at(seconds(1), [&] { ++count; });
  sim.at(seconds(2), [&] { ++count; });
  sim.at(seconds(10), [&] { ++count; });
  sim.run_until(seconds(5));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), seconds(5));
  sim.run_until(seconds(20));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockWithNoEvents) {
  Simulator sim;
  sim.run_until(seconds(42));
  EXPECT_EQ(sim.now(), seconds(42));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.at(seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.at(seconds(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // no effect, no crash
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(Simulator, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.after(seconds(1), recurse);
  };
  sim.at(seconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), seconds(5));
}

TEST(Simulator, DispatchCountTracksFiredEventsOnly) {
  Simulator sim;
  EventHandle h = sim.at(seconds(1), [] {});
  sim.at(seconds(2), [] {});
  h.cancel();
  sim.run();
  EXPECT_EQ(sim.events_dispatched(), 1u);
}

TEST(Simulator, ResetDropsPendingEventsAndClock) {
  Simulator sim;
  bool fired = false;
  sim.at(seconds(1), [&] { fired = true; });
  sim.run_until(milliseconds(500));
  sim.reset();
  EXPECT_EQ(sim.now(), Time{});
  sim.run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace efd::sim

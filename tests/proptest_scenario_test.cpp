// Generator and shrinker unit tests: structural validity of drawn
// scenarios, purity of generate(), and shrinking against cheap synthetic
// predicates. The expensive full-gauntlet sweeps live in proptest_sweep_test
// and proptest_determinism_test (ctest label `proptest`).
#include <gtest/gtest.h>

#include <set>

#include "src/testkit/invariants.hpp"
#include "src/testkit/proptest.hpp"
#include "src/testkit/scenario.hpp"
#include "src/testkit/world.hpp"

namespace efd::testkit {
namespace {

TEST(ScenarioGen, GenerateIsPureFunctionOfSeedAndIndex) {
  ScenarioGen a(123);
  ScenarioGen b(123);
  for (std::uint64_t i = 0; i < 25; ++i) {
    EXPECT_EQ(a.generate(i).describe(), b.generate(i).describe()) << "index " << i;
  }
}

TEST(ScenarioGen, DistinctIndicesGiveDistinctScenarios) {
  ScenarioGen gen(99);
  std::set<std::string> seen;
  for (std::uint64_t i = 0; i < 25; ++i) {
    seen.insert(gen.generate(i).describe());
  }
  // A collision would mean the index is not actually feeding the stream.
  EXPECT_GE(seen.size(), 24u);
}

TEST(ScenarioGen, DrawnScenariosAreStructurallyValid) {
  ScenarioGen gen(7);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Scenario s = gen.generate(i);
    EXPECT_GE(s.n_outlets, 2);
    for (const Scenario::Cable& c : s.cables) {
      EXPECT_GE(c.a, 0);
      EXPECT_LT(c.a, s.n_outlets);
      EXPECT_GE(c.b, 0);
      EXPECT_LT(c.b, s.n_outlets);
      EXPECT_GT(c.length_m, 0.0);
    }
    for (const Scenario::ApplianceSpec& a : s.appliances) {
      EXPECT_GE(a.outlet, 0);
      EXPECT_LT(a.outlet, s.n_outlets);
    }
    std::set<net::StationId> ids;
    for (const Scenario::StationSpec& st : s.stations) {
      EXPECT_GE(st.outlet, 0);
      EXPECT_LT(st.outlet, s.n_outlets);
      EXPECT_TRUE(ids.insert(st.id).second) << "duplicate station id";
    }
    EXPECT_GE(s.stations.size(), 2u);
    EXPECT_FALSE(s.traffic.empty());
    for (const Scenario::TrafficSpec& t : s.traffic) {
      EXPECT_GE(t.src, 0);
      EXPECT_LT(t.src, static_cast<int>(s.stations.size()));
      EXPECT_LT(t.dst, static_cast<int>(s.stations.size()));
      EXPECT_NE(t.src, t.dst);
    }
    EXPECT_EQ(s.hybrid.capacities_mbps.size(),
              static_cast<std::size_t>(s.hybrid.n_interfaces));
    EXPECT_GE(s.tone_map_slots, 2);
    EXPECT_GT(s.duration_s, 0.0);
  }
}

TEST(ScenarioShrink, CandidatesAreStrictlySimpler) {
  ScenarioGen gen(31);
  const Scenario s = gen.generate(2);
  for (const Scenario& c : shrink_candidates(s)) {
    const bool simpler =
        c.appliances.size() < s.appliances.size() ||
        c.traffic.size() < s.traffic.size() ||
        c.stations.size() < s.stations.size() || c.n_outlets < s.n_outlets ||
        c.duration_s < s.duration_s ||
        (s.fault_pb_error > 0.0 && c.fault_pb_error == 0.0) ||
        (s.beacons && !c.beacons) ||
        c.hybrid.n_packets < s.hybrid.n_packets ||
        c.nan.n_reports < s.nan.n_reports || c.nan.max_hops < s.nan.max_hops;
    EXPECT_TRUE(simpler);
  }
}

TEST(ScenarioShrink, GreedyShrinkReachesMinimalOutletCount) {
  // Synthetic predicate: "fails" whenever the grid still has >= 3 outlets.
  // The shrinker must walk the outlet-collapse ladder down to exactly 3.
  ScenarioGen gen(5);
  Scenario s = gen.generate(1);
  while (s.n_outlets < 4) s = gen.generate(s.index + 7);
  const Scenario minimal =
      shrink(s, [](const Scenario& c) { return c.n_outlets >= 3; });
  EXPECT_EQ(minimal.n_outlets, 3);
}

TEST(ScenarioShrink, ShrunkScenarioStillBuildsAWorld) {
  ScenarioGen gen(11);
  const Scenario minimal = shrink(
      gen.generate(0), [](const Scenario& c) { return !c.traffic.empty(); });
  sim::Simulator sim;
  ScenarioWorld world(minimal, sim);
  const RunTrace trace = world.run();
  EXPECT_EQ(trace.digest(), trace.digest());
}

TEST(Invariants, NamesCoverAllEighteenCheckers) {
  EXPECT_EQ(invariant_names().size(), 18u);
}

TEST(Invariants, CleanScenarioHasNoViolations) {
  ScenarioGen gen(3);
  const Scenario s = gen.generate(0);
  sim::Simulator sim;
  ScenarioWorld world(s, sim);
  const RunTrace trace = world.run();
  const auto violations = check_invariants(world, trace);
  EXPECT_TRUE(violations.empty())
      << violations.front().invariant << ": " << violations.front().detail;
  const auto hybrid = check_hybrid_invariants(s);
  EXPECT_TRUE(hybrid.empty())
      << hybrid.front().invariant << ": " << hybrid.front().detail;
}

TEST(Invariants, CorruptionHooksTripTheirCheckers) {
  // Each hook simulates one bug class; its designated invariant (and only
  // a related one) must fire on an otherwise clean scenario.
  ScenarioGen gen(3);
  const Scenario s = gen.generate(0);
  sim::Simulator sim;
  ScenarioWorld world(s, sim);
  const RunTrace trace = world.run();

  InvariantOptions pberr;
  pberr.inject_pberr_offset = 1.5;
  bool saw_pberr = false;
  for (const Violation& v : check_invariants(world, trace, pberr)) {
    saw_pberr |= v.invariant == "pberr-range";
  }
  EXPECT_TRUE(saw_pberr);

  InvariantOptions ble;
  ble.inject_ble_scale = 0.5;
  bool saw_ble = false;
  for (const Violation& v : check_invariants(world, trace, ble)) {
    saw_ble |= v.invariant == "ble-eq1";
  }
  EXPECT_TRUE(saw_ble);

  InvariantOptions dc;
  dc.inject_dc_offset = 100;
  bool saw_dc = false;
  for (const Violation& v : check_invariants(world, trace, dc)) {
    saw_dc |= v.invariant == "deferral-counter";
  }
  EXPECT_TRUE(saw_dc);
}

TEST(Invariants, NanCorruptionHooksTripTheirCheckers) {
  // The NAN-side hooks live in check_hybrid_invariants: a leaked diversity
  // copy, a skewed duplicate-bytes counter and a relay forwarding loop must
  // each fire their own checker on an otherwise clean scenario.
  ScenarioGen gen(3);
  const Scenario s = gen.generate(0);

  InvariantOptions leak;
  leak.inject_dup_leak = true;
  bool saw_leak = false;
  for (const Violation& v : check_hybrid_invariants(s, leak)) {
    saw_leak |= v.invariant == "diversity-no-dup-delivery";
  }
  EXPECT_TRUE(saw_leak);

  InvariantOptions skew;
  skew.inject_dup_bytes_skew = 2.0;
  bool saw_skew = false;
  for (const Violation& v : check_hybrid_invariants(s, skew)) {
    saw_skew |= v.invariant == "diversity-accounting";
  }
  EXPECT_TRUE(saw_skew);

  InvariantOptions cycle;
  cycle.inject_relay_cycle = true;
  bool saw_cycle = false;
  for (const Violation& v : check_hybrid_invariants(s, cycle)) {
    saw_cycle |= v.invariant == "relay-acyclic";
  }
  EXPECT_TRUE(saw_cycle);
}

TEST(ScenarioGen, NanFuzzDrawsAreStructurallyValid) {
  ScenarioGen gen(17);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Scenario s = gen.generate(i);
    EXPECT_GE(s.nan.n_transformers, 2);
    EXPECT_GE(s.nan.stations_per_transformer, 3);
    EXPECT_GE(s.nan.mode, 0);
    EXPECT_LE(s.nan.mode, 3);
    EXPECT_GE(s.nan.p_remote, 0.0);
    EXPECT_LE(s.nan.p_remote, 1.0);
    EXPECT_GT(s.nan.gap_timeout_ms, 0.0);
    EXPECT_GT(s.nan.n_reports, 0);
    EXPECT_GE(s.nan.max_hops, 1);
    EXPECT_GT(s.nan.max_link_etx, s.nan.connect_etx);
    EXPECT_GE(s.nan.relay_nodes, 2);
    EXPECT_GT(s.nan.relay_edge_prob, 0.0);
  }
}

}  // namespace
}  // namespace efd::testkit

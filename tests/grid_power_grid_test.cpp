#include "src/grid/power_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace efd::grid {
namespace {

sim::Time weekday_noon() { return sim::days(1) + sim::hours(12); }

/// A minimal grid: a -- j -- b with an optional appliance at j.
struct SmallGrid {
  PowerGrid grid;
  int a, j, b;

  SmallGrid() {
    a = grid.add_node("a");
    j = grid.add_node("j");
    b = grid.add_node("b");
    grid.add_cable(a, j, 10.0);
    grid.add_cable(j, b, 20.0);
  }
};

TEST(PowerGrid, ShortestPathDistances) {
  SmallGrid g;
  EXPECT_DOUBLE_EQ(g.grid.cable_distance(g.a, g.b), 30.0);
  EXPECT_DOUBLE_EQ(g.grid.cable_distance(g.b, g.a), 30.0);
  EXPECT_DOUBLE_EQ(g.grid.cable_distance(g.a, g.a), 0.0);
}

TEST(PowerGrid, DisconnectedNodesAreInfinite) {
  PowerGrid grid;
  const int a = grid.add_node("a");
  const int b = grid.add_node("b");
  EXPECT_TRUE(std::isinf(grid.cable_distance(a, b)));
  const auto att = grid.attenuation_db(a, b, CarrierBand{}, weekday_noon());
  EXPECT_GE(att[0], 150.0);  // effectively no path
}

TEST(PowerGrid, ParallelPathsTakeShorter) {
  PowerGrid grid;
  const int a = grid.add_node("a");
  const int b = grid.add_node("b");
  grid.add_cable(a, b, 50.0);
  grid.add_cable(a, b, 30.0);
  EXPECT_DOUBLE_EQ(grid.cable_distance(a, b), 30.0);
}

TEST(PowerGrid, ExtraLossAccumulatesAlongPath) {
  PowerGrid grid;
  const int a = grid.add_node("a");
  const int m = grid.add_node("m");
  const int b = grid.add_node("b");
  grid.add_cable(a, m, 10.0, 5.0);
  grid.add_cable(m, b, 10.0, 7.0);
  EXPECT_DOUBLE_EQ(grid.path_extra_loss_db(a, b), 12.0);
  EXPECT_DOUBLE_EQ(grid.path_extra_loss_db(a, m), 5.0);
}

TEST(PowerGrid, BareLongCableLosesLittle) {
  // The paper's isolated-cable experiment (§5): up to 70 m of cable alone
  // costs at most ~2 Mb/s, i.e. a few dB — multipath, not cable, dominates.
  // Compare against a 1 m cable from the same transmitter so the fixed
  // outlet-coupling term cancels.
  PowerGrid grid;
  const int a = grid.add_node("a");
  const int b = grid.add_node("b");
  const int c = grid.add_node("c");
  grid.add_cable(a, b, 70.0);
  grid.add_cable(a, c, 1.0);
  const auto far = grid.attenuation_db(a, b, CarrierBand{}, weekday_noon());
  const auto near = grid.attenuation_db(a, c, CarrierBand{}, weekday_noon());
  for (std::size_t i = 0; i < far.size(); ++i) {
    EXPECT_LT(far[i] - near[i], 5.0);
  }
}

TEST(PowerGrid, CableLossGrowsWithFrequencyAndDistance) {
  PowerGrid grid;
  const int a = grid.add_node("a");
  const int b = grid.add_node("b");
  const int c = grid.add_node("c");
  grid.add_cable(a, b, 20.0);
  grid.add_cable(b, c, 60.0);
  const CarrierBand band{};
  const auto near = grid.attenuation_db(a, b, band, weekday_noon());
  const auto far = grid.attenuation_db(a, c, band, weekday_noon());
  EXPECT_LT(near.front(), far.front());
  // Within one path, the top of the band attenuates more than the bottom.
  EXPECT_LT(far.front(), far.back());
}

TEST(PowerGrid, OnPathApplianceAddsAttenuation) {
  SmallGrid clean;
  SmallGrid loaded;
  Appliance fridge = make_appliance(ApplianceType::kFridge, loaded.j, 11);
  fridge.schedule = ActivitySchedule::always_on();  // pin for determinism
  loaded.grid.add_appliance(fridge);
  const CarrierBand band{};
  const auto att0 = clean.grid.attenuation_db(clean.a, clean.b, band, weekday_noon());
  const auto att1 = loaded.grid.attenuation_db(loaded.a, loaded.b, band, weekday_noon());
  double sum0 = 0, sum1 = 0;
  for (std::size_t i = 0; i < att0.size(); ++i) {
    sum0 += att0[i];
    sum1 += att1[i];
  }
  EXPECT_GT(sum1, sum0 + 100.0);  // clearly more loss across the band
}

TEST(PowerGrid, ApplianceNearTransmitterCreatesAsymmetry) {
  // A heavy load next to `a` hurts a->b (injection loss at a) more than
  // it hurts b->a — the §5 asymmetry mechanism.
  SmallGrid g;
  g.grid.add_appliance(make_appliance(ApplianceType::kMicrowave, g.a, 21));
  // Force it always-on for a deterministic check.
  const CarrierBand band{};
  const auto t = sim::days(1) + sim::hours(12.05);  // lunch: microwave windows
  const auto ab = g.grid.attenuation_db(g.a, g.b, band, t);
  const auto ba = g.grid.attenuation_db(g.b, g.a, band, t);
  double sab = 0, sba = 0;
  for (std::size_t i = 0; i < ab.size(); ++i) {
    sab += ab[i];
    sba += ba[i];
  }
  if (g.grid.appliance_on(0, t)) {
    EXPECT_GT(sab, sba);
  }
}

TEST(PowerGrid, NoisePsdIsBackgroundOnlyWithoutAppliances) {
  // With no loads, only the grid's background mains noise remains: a small,
  // flat, slot-dependent residual over the receiver floor.
  SmallGrid g;
  const auto noise = g.grid.noise_psd_db(g.b, CarrierBand{}, weekday_noon(), 0, 6);
  for (double v : noise) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 6.0);
    EXPECT_NEAR(v, noise[0], 1e-9);  // flat across carriers
  }
  // The background component is mains-synchronous: slots differ.
  const auto other_slot =
      g.grid.noise_psd_db(g.b, CarrierBand{}, weekday_noon(), 3, 6);
  EXPECT_NE(noise[0], other_slot[0]);
}

TEST(PowerGrid, NoiseDecaysWithDistanceFromSource) {
  PowerGrid grid;
  const int a = grid.add_node("a");
  const int m = grid.add_node("m");
  const int b = grid.add_node("b");
  grid.add_cable(a, m, 5.0);
  grid.add_cable(m, b, 40.0);
  grid.add_appliance(make_appliance(ApplianceType::kLightBank, a, 31));
  const auto t = sim::days(1) + sim::hours(12);
  ASSERT_TRUE(grid.appliance_on(0, t));
  const auto near = grid.noise_psd_db(a, CarrierBand{}, t, 0, 6);
  const auto far = grid.noise_psd_db(b, CarrierBand{}, t, 0, 6);
  EXPECT_GT(near[100], far[100]);
}

TEST(PowerGrid, NoiseVariesAcrossToneMapSlots) {
  SmallGrid g;
  g.grid.add_appliance(make_appliance(ApplianceType::kLightBank, g.j, 41));
  const auto t = sim::days(1) + sim::hours(12);
  ASSERT_TRUE(g.grid.appliance_on(0, t));
  double lo = 1e9, hi = -1e9;
  for (int s = 0; s < 6; ++s) {
    const auto noise = g.grid.noise_psd_db(g.b, CarrierBand{}, t, s, 6);
    lo = std::min(lo, noise[50]);
    hi = std::max(hi, noise[50]);
  }
  // The mains-synchronous component makes slots differ (invariance scale).
  EXPECT_GT(hi - lo, 0.3);
}

TEST(PowerGrid, WorkspaceAttenuationIsBitIdenticalToVectorApi) {
  SmallGrid g;
  Appliance fridge = make_appliance(ApplianceType::kFridge, g.j, 81);
  fridge.schedule = ActivitySchedule::always_on();
  g.grid.add_appliance(fridge);
  const CarrierBand band{};
  const auto t = weekday_noon();
  const auto ref = g.grid.attenuation_db(g.a, g.b, band, t);

  CarrierWorkspace ws;
  const auto span = g.grid.attenuation_db(g.a, g.b, band, t, ws);
  ASSERT_EQ(span.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(span[i], ref[i]);

  std::vector<double> out;
  g.grid.attenuation_db(g.a, g.b, band, t, out);
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(out[i], ref[i]);
}

TEST(PowerGrid, WorkspaceNoisePsdMatchesVectorApi) {
  SmallGrid g;
  Appliance lights = make_appliance(ApplianceType::kLightBank, g.j, 91);
  lights.schedule = ActivitySchedule::always_on();
  g.grid.add_appliance(lights);
  const CarrierBand band{};
  const auto t = weekday_noon();
  for (int slot = 0; slot < 6; ++slot) {
    const auto ref = g.grid.noise_psd_db(g.b, band, t, slot, 6);
    CarrierWorkspace ws;
    const auto span = g.grid.noise_psd_db(g.b, band, t, slot, 6, ws);
    ASSERT_EQ(span.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(span[i], ref[i], 1e-12) << "slot " << slot << " carrier " << i;
    }
  }
}

TEST(PowerGrid, WorkspaceReuseAcrossLinksStaysCorrect) {
  // Scratch reuse must not leak one link's carriers into the next query.
  SmallGrid g;
  const CarrierBand band{};
  const auto t = weekday_noon();
  CarrierWorkspace ws;
  (void)g.grid.attenuation_db(g.a, g.b, band, t, ws);
  const auto ref = g.grid.attenuation_db(g.j, g.b, band, t);
  const auto span = g.grid.attenuation_db(g.j, g.b, band, t, ws);
  ASSERT_EQ(span.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(span[i], ref[i]);
}

TEST(PowerGrid, StateEpochChangesWithApplianceToggles) {
  SmallGrid g;
  g.grid.add_appliance(make_appliance(ApplianceType::kLightBank, g.j, 51));
  const auto on_t = sim::days(1) + sim::hours(12);
  const auto off_t = sim::days(1) + sim::hours(23);
  EXPECT_NE(g.grid.state_epoch(on_t), g.grid.state_epoch(off_t));
  EXPECT_EQ(g.grid.state_epoch(on_t), g.grid.state_epoch(on_t + sim::seconds(1)));
}

TEST(PowerGrid, AppliancesOnCountsSchedules) {
  SmallGrid g;
  g.grid.add_appliance(make_appliance(ApplianceType::kLightBank, g.j, 61));
  g.grid.add_appliance(make_appliance(ApplianceType::kPhoneCharger, g.j, 62));
  EXPECT_EQ(g.grid.appliances_on(sim::days(1) + sim::hours(12)), 2);
  EXPECT_EQ(g.grid.appliances_on(sim::days(1) + sim::hours(23)), 1);
}

TEST(PowerGrid, FastNoiseOffsetIsBoundedAndTimeVarying) {
  SmallGrid g;
  Appliance fridge = make_appliance(ApplianceType::kFridge, g.b, 71);
  fridge.schedule = ActivitySchedule::always_on();  // pin for determinism
  g.grid.add_appliance(fridge);
  const auto t0 = sim::days(1) + sim::hours(12);
  bool varied = false;
  double prev = g.grid.fast_noise_offset_db(g.b, t0);
  for (int i = 1; i < 200; ++i) {
    const double cur =
        g.grid.fast_noise_offset_db(g.b, t0 + sim::milliseconds(i * 50.0));
    EXPECT_LT(std::abs(cur), 40.0);
    if (std::abs(cur - prev) > 1e-6) varied = true;
    prev = cur;
  }
  EXPECT_TRUE(varied);
}

TEST(PowerGrid, HopsAndTapLossAffectAttenuation) {
  // Same total length, more junctions => more attenuation (tap loss).
  PowerGrid direct;
  const int da = direct.add_node("a");
  const int db = direct.add_node("b");
  direct.add_cable(da, db, 40.0);

  PowerGrid tapped;
  const int ta = tapped.add_node("a");
  const int t1 = tapped.add_node("j1");
  const int t2 = tapped.add_node("j2");
  const int tb = tapped.add_node("b");
  tapped.add_cable(ta, t1, 10.0);
  tapped.add_cable(t1, t2, 15.0);
  tapped.add_cable(t2, tb, 15.0);

  const CarrierBand band{};
  const auto a0 = direct.attenuation_db(da, db, band, weekday_noon());
  const auto a1 = tapped.attenuation_db(ta, tb, band, weekday_noon());
  EXPECT_GT(a1[100], a0[100] + 2.0);  // two taps at ~1.5 dB each
}

}  // namespace
}  // namespace efd::grid

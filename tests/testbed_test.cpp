#include "src/testbed/testbed.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace efd::testbed {
namespace {

struct TestbedFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<Testbed> tb;

  void SetUp() override {
    Testbed::Config cfg;
    cfg.with_hpav500 = true;
    tb = std::make_unique<Testbed>(sim, cfg);
  }
};

TEST_F(TestbedFixture, NineteenStations) {
  EXPECT_EQ(Testbed::kStations, 19);
  for (int s = 0; s < Testbed::kStations; ++s) {
    EXPECT_GE(tb->outlet_of(s), 0);
  }
}

TEST_F(TestbedFixture, TwoNetworksSplitAtStation12) {
  for (int s = 0; s <= 11; ++s) EXPECT_TRUE(on_board_b1(s)) << s;
  for (int s = 12; s <= 18; ++s) EXPECT_FALSE(on_board_b1(s)) << s;
  EXPECT_TRUE(tb->same_plc_network(0, 11));
  EXPECT_TRUE(tb->same_plc_network(12, 18));
  EXPECT_FALSE(tb->same_plc_network(11, 12));
}

TEST_F(TestbedFixture, CcosArePinnedAsInFig2) {
  EXPECT_EQ(tb->plc_network_of(0).cco(), 11);
  EXPECT_EQ(tb->plc_network_of(15).cco(), 15);
}

TEST_F(TestbedFixture, LinkCountMatchesPaperScale) {
  // Two networks of 12 and 7 stations: 12*11 + 7*6 = 174 directed pairs.
  // The paper reports 144 formed links (not every pair sustains one).
  EXPECT_EQ(tb->plc_links().size(), 174u);
  EXPECT_EQ(tb->all_pairs().size(), 342u);  // 19*18
}

TEST_F(TestbedFixture, CableDistancesSpanThePaperRange) {
  double lo = 1e9, hi = 0.0;
  for (const auto& [a, b] : tb->plc_links()) {
    const double d = tb->plc_channel().cable_distance(a, b);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, 20.0);   // close pairs exist
  EXPECT_GT(hi, 60.0);   // long intra-network runs exist (Fig. 7: 20-100 m)
  EXPECT_LT(hi, 120.0);
}

TEST_F(TestbedFixture, CrossBoardPathsAreLongAndLossy) {
  const double d = tb->plc_channel().cable_distance(11, 12);
  EXPECT_GT(d, 200.0);  // "more than 200 m" (§3.1)
  EXPECT_GE(tb->grid().path_extra_loss_db(tb->outlet_of(11), tb->outlet_of(12)),
            50.0);
}

TEST_F(TestbedFixture, FloorPositionsWithinFig2Extents) {
  for (int s = 0; s < Testbed::kStations; ++s) {
    const auto [x, y] = station_position(s);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 70.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 40.0);
  }
}

TEST_F(TestbedFixture, FloorDistanceIsSymmetricMetric) {
  for (int a = 0; a < Testbed::kStations; a += 3) {
    for (int b = 0; b < Testbed::kStations; b += 4) {
      EXPECT_DOUBLE_EQ(tb->floor_distance_m(a, b), tb->floor_distance_m(b, a));
      if (a != b) {
        EXPECT_GT(tb->floor_distance_m(a, b), 0.0);
      }
    }
  }
}

TEST_F(TestbedFixture, Hpav500StackIsIndependent) {
  auto& av = tb->plc_channel(PlcGeneration::kHpav);
  auto& av500 = tb->plc_channel(PlcGeneration::kHpav500);
  EXPECT_EQ(av.phy().band.n_carriers, 917);
  EXPECT_EQ(av500.phy().band.n_carriers, 2232);
  // Same wiring underneath.
  EXPECT_DOUBLE_EQ(av.cable_distance(0, 11), av500.cable_distance(0, 11));
}

TEST_F(TestbedFixture, AppliancePopulationIsOfficeLike) {
  // 19 workstations + 19 monitors + lights + kitchen + misc.
  EXPECT_GT(tb->grid().appliance_count(), 45);
  EXPECT_LT(tb->grid().appliance_count(), 80);
  // Working hours: most of the floor is on. Night: only standing loads.
  const int day_on = tb->grid().appliances_on(sim::days(1) + sim::hours(14));
  const int night_on = tb->grid().appliances_on(sim::days(1) + sim::hours(23.5));
  EXPECT_GT(day_on, night_on + 10);
}

TEST_F(TestbedFixture, WifiStationsPlacedForAllIds) {
  for (int s = 0; s < Testbed::kStations; ++s) {
    EXPECT_EQ(tb->wifi_station(s).id(), s);
  }
}

TEST(TestbedNoAv500, OptOutSkipsSecondStack) {
  sim::Simulator sim;
  Testbed::Config cfg;
  cfg.with_hpav500 = false;
  Testbed tb(sim, cfg);
  EXPECT_EQ(tb.plc_channel(PlcGeneration::kHpav).phy().band.n_carriers, 917);
}

TEST(TestbedDeterminism, SameSeedSameChannel) {
  sim::Simulator s1, s2;
  Testbed::Config cfg;
  cfg.with_hpav500 = false;
  Testbed t1(s1, cfg), t2(s2, cfg);
  const auto t = sim::days(1) + sim::hours(10);
  EXPECT_DOUBLE_EQ(t1.plc_channel().mean_snr_db(0, 5, 2, t),
                   t2.plc_channel().mean_snr_db(0, 5, 2, t));
}

}  // namespace
}  // namespace efd::testbed

#include "src/hybrid/routing.hpp"

#include <gtest/gtest.h>

namespace efd::hybrid {
namespace {

LinkMetric metric(double capacity_mbps, double loss = 0.0,
                  sim::Time updated = sim::seconds(100)) {
  return {capacity_mbps, loss, updated};
}

sim::Time now() { return sim::seconds(110); }

TEST(Ett, AirtimeAndRetransmissions) {
  // 1500 B at 12 Mb/s = 1 ms airtime; 50% loss doubles it.
  EXPECT_NEAR(expected_transmission_time_ms(metric(12.0), 1500), 1.0, 1e-9);
  EXPECT_NEAR(expected_transmission_time_ms(metric(12.0, 0.5), 1500), 2.0, 1e-9);
}

TEST(Ett, DeadLinkIsInfinite) {
  EXPECT_GE(expected_transmission_time_ms(metric(0.0), 1500), 1e8);
}

TEST(MeshRouter, DirectRouteWhenGood) {
  LinkMetricTable table;
  table.update(0, 1, Medium::kPlc, metric(100.0));
  MeshRouter router(table);
  const auto path = router.route(0, 1, now());
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0].from, 0);
  EXPECT_EQ(path[0].to, 1);
  EXPECT_EQ(path[0].medium, Medium::kPlc);
}

TEST(MeshRouter, PicksFasterMedium) {
  LinkMetricTable table;
  table.update(0, 1, Medium::kPlc, metric(30.0));
  table.update(0, 1, Medium::kWifi, metric(90.0));
  MeshRouter router(table);
  const auto path = router.route(0, 1, now());
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0].medium, Medium::kWifi);
}

TEST(MeshRouter, RelaysAroundABadDirectLink) {
  LinkMetricTable table;
  table.update(0, 2, Medium::kPlc, metric(2.0));    // direct but terrible
  table.update(0, 1, Medium::kPlc, metric(100.0));  // via relay 1
  table.update(1, 2, Medium::kPlc, metric(100.0));
  MeshRouter router(table);
  const auto path = router.route(0, 2, now());
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].to, 1);
  EXPECT_EQ(path[1].to, 2);
}

TEST(MeshRouter, PrefersAlternatingMediumsWhenCostsTie) {
  // Two equal-rate 2-hop options; the PLC+WiFi one wins the discount.
  LinkMetricTable table;
  table.update(0, 1, Medium::kPlc, metric(100.0));
  table.update(1, 2, Medium::kPlc, metric(100.0));
  table.update(1, 2, Medium::kWifi, metric(100.0));
  MeshRouter router(table);
  const auto path = router.route(0, 2, now());
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].medium, Medium::kPlc);
  EXPECT_EQ(path[1].medium, Medium::kWifi);
}

TEST(MeshRouter, AlternationCanBeDisabled) {
  LinkMetricTable table;
  table.update(0, 1, Medium::kPlc, metric(100.0));
  table.update(1, 2, Medium::kPlc, metric(101.0));  // slightly faster
  table.update(1, 2, Medium::kWifi, metric(100.0));
  MeshRouter::Config cfg;
  cfg.alternation_discount = 1.0;
  MeshRouter router(table, cfg);
  const auto path = router.route(0, 2, now());
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[1].medium, Medium::kPlc);
}

TEST(MeshRouter, StaleMetricsAreIgnored) {
  LinkMetricTable table;
  table.update(0, 1, Medium::kPlc, metric(100.0, 0.0, sim::Time{}));  // ancient
  MeshRouter::Config cfg;
  cfg.metric_max_age = sim::seconds(60);
  MeshRouter router(table, cfg);
  EXPECT_TRUE(router.route(0, 1, sim::seconds(120)).empty());
}

TEST(MeshRouter, UnreachableIsEmpty) {
  LinkMetricTable table;
  table.update(0, 1, Medium::kPlc, metric(100.0));
  table.update(2, 3, Medium::kPlc, metric(100.0));
  MeshRouter router(table);
  EXPECT_TRUE(router.route(0, 3, now()).empty());
}

TEST(MeshRouter, RespectsHopLimit) {
  LinkMetricTable table;
  for (int i = 0; i < 9; ++i) {
    table.update(i, i + 1, Medium::kPlc, metric(100.0));
  }
  MeshRouter::Config cfg;
  cfg.max_hops = 6;
  MeshRouter router(table, cfg);
  EXPECT_TRUE(router.route(0, 9, now()).empty());   // needs 9 hops
  EXPECT_EQ(router.route(0, 6, now()).size(), 6u);  // exactly at the limit
}

TEST(MeshRouter, SelfRouteIsEmpty) {
  LinkMetricTable table;
  MeshRouter router(table);
  EXPECT_TRUE(router.route(4, 4, now()).empty());
}

TEST(MeshRouter, PathEttSumsRawCosts) {
  LinkMetricTable table;
  table.update(0, 1, Medium::kPlc, metric(12.0));        // 1 ms
  table.update(1, 2, Medium::kWifi, metric(12.0, 0.5));  // 2 ms
  MeshRouter router(table);
  const auto path = router.route(0, 2, now());
  ASSERT_EQ(path.size(), 2u);
  EXPECT_NEAR(router.path_ett_ms(path, now()), 3.0, 1e-9);
}

TEST(MeshRouter, LossyShortcutLosesToCleanRelay) {
  // ETX folds loss into the cost: a 30%-loss direct link is worse than two
  // clean hops at the same rate.
  LinkMetricTable table;
  table.update(0, 2, Medium::kWifi, metric(50.0, 0.5));
  table.update(0, 1, Medium::kWifi, metric(50.0));
  table.update(1, 2, Medium::kWifi, metric(50.0));
  MeshRouter router(table);
  const auto path = router.route(0, 2, now());
  EXPECT_EQ(path.size(), 1u);  // 0.48 ms direct vs 0.48 ms relay: tie -> direct
  // Now make the direct link lossier: relay wins.
  table.update(0, 2, Medium::kWifi, metric(50.0, 0.7));
  const auto path2 = router.route(0, 2, now());
  EXPECT_EQ(path2.size(), 2u);
}

}  // namespace
}  // namespace efd::hybrid

#include "src/grid/appliance.hpp"

#include <gtest/gtest.h>

namespace efd::grid {
namespace {

constexpr ApplianceType kAllTypes[] = {
    ApplianceType::kLightBank,   ApplianceType::kWorkstation,
    ApplianceType::kMonitor,     ApplianceType::kFridge,
    ApplianceType::kMicrowave,   ApplianceType::kCoffeeMachine,
    ApplianceType::kPrinter,     ApplianceType::kHvac,
    ApplianceType::kPhoneCharger,
};

class AppliancePresetSweep : public ::testing::TestWithParam<ApplianceType> {};

TEST_P(AppliancePresetSweep, PresetIsPhysicallySane) {
  const Appliance a = make_appliance(GetParam(), 3, 42);
  EXPECT_EQ(a.outlet, 3);
  EXPECT_GT(a.impedance_ohm, 0.0);
  EXPECT_LT(a.impedance_ohm, 2000.0);
  EXPECT_GE(a.noise.base_db, 0.0);
  EXPECT_LE(a.noise.base_db, 30.0);
  EXPECT_GE(a.noise.sync_db, 0.0);
  EXPECT_GE(a.noise.jitter_db, 0.0);
  EXPECT_GE(a.noise.impulse_rate_hz, 0.0);
  EXPECT_LE(a.noise.color_db_per_mhz, 0.0);  // noise falls with frequency
  EXPECT_GT(a.branch_delay_us, 0.0);
  EXPECT_LT(a.branch_delay_us, 1.0);
  EXPECT_GT(a.notch_depth_db, 0.0);
}

TEST_P(AppliancePresetSweep, SeedIndividualizes) {
  const Appliance a = make_appliance(GetParam(), 0, 1);
  const Appliance b = make_appliance(GetParam(), 0, 2);
  EXPECT_NE(a.impedance_ohm, b.impedance_ohm);
  EXPECT_NE(a.branch_delay_us, b.branch_delay_us);
}

TEST_P(AppliancePresetSweep, SameSeedSamePreset) {
  const Appliance a = make_appliance(GetParam(), 0, 9);
  const Appliance b = make_appliance(GetParam(), 0, 9);
  EXPECT_DOUBLE_EQ(a.impedance_ohm, b.impedance_ohm);
  EXPECT_DOUBLE_EQ(a.notch_depth_db, b.notch_depth_db);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, AppliancePresetSweep,
                         ::testing::ValuesIn(kAllTypes));

TEST(Appliance, HeavyLoadsHaveLowImpedance) {
  // The fridge/microwave class of loads — the asymmetry sources of §5 —
  // must mismatch the line harder than small electronics.
  const Appliance fridge = make_appliance(ApplianceType::kFridge, 0, 3);
  const Appliance charger = make_appliance(ApplianceType::kPhoneCharger, 0, 3);
  EXPECT_LT(fridge.impedance_ohm, charger.impedance_ohm);
}

TEST(Appliance, ToStringCoversAllTypes) {
  for (ApplianceType t : kAllTypes) {
    EXPECT_NE(to_string(t), "unknown");
  }
}

TEST(Appliance, FridgeIsDutyCycled) {
  const Appliance fridge = make_appliance(ApplianceType::kFridge, 0, 5);
  EXPECT_EQ(fridge.schedule.kind(), ActivitySchedule::Kind::kDutyCycle);
}

TEST(Appliance, LightsFollowOfficeSchedule) {
  const Appliance lights = make_appliance(ApplianceType::kLightBank, 0, 5);
  EXPECT_EQ(lights.schedule.kind(), ActivitySchedule::Kind::kOfficeLights);
}

}  // namespace
}  // namespace efd::grid

// efd::core::Arena + ArenaAllocator: bump semantics, chunk growth, reset()
// reuse, the heap-escape rules containers rely on, and the zero-alloc pin on
// arena-backed scenario churn (the property the proptest sweep's per-task
// arenas exist for). Includes alloc_count.hpp, so this binary owns the
// process-wide counting operator new.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "alloc_count.hpp"
#include "src/core/arena.hpp"
#include "src/testkit/scenario.hpp"

namespace efd {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDistinct) {
  core::Arena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(16, 64);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  EXPECT_GE(arena.bytes_used(), 3u + 8u + 16u);
}

TEST(ArenaTest, ZeroSizeAllocationsYieldDistinctPointers) {
  core::Arena arena;
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, ChunksDoubleAndOversizeRequestsGetTheirOwnChunk) {
  core::Arena arena(1024);
  (void)arena.allocate(512, 1);
  EXPECT_EQ(arena.chunk_count(), 1u);
  (void)arena.allocate(1024, 1);  // spills into a second, doubled chunk
  EXPECT_EQ(arena.chunk_count(), 2u);
  // A request larger than the next chunk size still succeeds in one piece.
  void* big = arena.allocate(1 << 20, 64);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), (1u << 20));
}

TEST(ArenaTest, ResetReusesChunksWithZeroHeapTraffic) {
  core::Arena arena;
  // Warm-up: force several chunks into existence.
  for (int i = 0; i < 8; ++i) (void)arena.allocate(48 * 1024, 8);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t chunks = arena.chunk_count();

  const testsupport::AllocationWindow window;
  for (int round = 0; round < 10; ++round) {
    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    for (int i = 0; i < 8; ++i) (void)arena.allocate(48 * 1024, 8);
  }
  EXPECT_EQ(window.count(), 0u);
  EXPECT_EQ(window.bytes(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(ArenaAllocatorTest, VectorGrowsOnArenaNotHeap) {
  core::Arena arena;
  std::vector<int, core::ArenaAllocator<int>> v{
      core::ArenaAllocator<int>(arena)};
  // Warm the arena past this vector's eventual footprint.
  (void)arena.allocate(1 << 16, 8);
  arena.reset();
  const testsupport::AllocationWindow window;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(window.count(), 0u);
  EXPECT_EQ(v.get_allocator().arena(), &arena);
}

TEST(ArenaAllocatorTest, DefaultConstructedFallsBackToHeap) {
  std::vector<int, core::ArenaAllocator<int>> v;
  const testsupport::AllocationWindow window;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_GT(window.count(), 0u);
  EXPECT_EQ(v.get_allocator().arena(), nullptr);
}

TEST(ArenaAllocatorTest, CopiesEscapeToHeapAndSurviveReset) {
  core::Arena arena;
  std::vector<int, core::ArenaAllocator<int>> on_arena{
      core::ArenaAllocator<int>(arena)};
  for (int i = 0; i < 64; ++i) on_arena.push_back(i);

  auto copy = on_arena;  // select_on_container_copy_construction -> heap
  EXPECT_EQ(copy.get_allocator().arena(), nullptr);
  arena.reset();
  (void)arena.allocate(4096, 8);  // scribble over the old storage region
  ASSERT_EQ(copy.size(), 64u);
  EXPECT_EQ(copy[0], 0);
  EXPECT_EQ(copy[63], 63);
}

TEST(ArenaAllocatorTest, MovesKeepTheArenaBinding) {
  core::Arena arena;
  std::vector<int, core::ArenaAllocator<int>> v{
      core::ArenaAllocator<int>(arena)};
  v.push_back(7);
  auto moved = std::move(v);
  EXPECT_EQ(moved.get_allocator().arena(), &arena);
  EXPECT_EQ(moved.at(0), 7);
}

TEST(ArenaAllocatorTest, EqualityComparesTheArena) {
  core::Arena a;
  core::Arena b;
  const core::ArenaAllocator<int> on_a{a};
  const core::ArenaAllocator<int> on_a2{a};
  const core::ArenaAllocator<int> on_b{b};
  const core::ArenaAllocator<int> heap1;
  const core::ArenaAllocator<int> heap2;
  EXPECT_TRUE(on_a == on_a2);
  EXPECT_FALSE(on_a == on_b);
  EXPECT_TRUE(heap1 == heap2);
  EXPECT_FALSE(on_a == heap1);
}

TEST(ArenaScenarioTest, ArenaBackedGenerationMatchesHeapGeneration) {
  const testkit::ScenarioGen gen(0x5eedULL);
  core::Arena arena;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const testkit::Scenario heap = gen.generate(i);
    testkit::Scenario on_arena(arena);
    gen.generate_into(i, on_arena);
    EXPECT_EQ(heap.describe(), on_arena.describe()) << "index " << i;
    arena.reset();
  }
}

TEST(ArenaScenarioTest, ScenarioChurnIsHeapFreeAfterWarmup) {
  // The acceptance pin: the proptest sweep's per-task build/tear-down of
  // Scenario graphs performs zero heap allocations once the worker's arena
  // has grown to the high-water mark (ParallelRunner resets it per task).
  const testkit::ScenarioGen gen(0xc0ffeeULL);
  constexpr std::uint64_t kScenarios = 64;
  core::Arena arena;
  const auto churn = [&gen, &arena] {  // the ParallelRunner per-task pattern
    for (std::uint64_t i = 0; i < kScenarios; ++i) {
      arena.reset();
      testkit::Scenario s(arena);
      gen.generate_into(i, s);
    }
  };
  churn();  // warm-up: grow the arena to the sweep's high-water mark

  const testsupport::AllocationWindow window;
  churn();
  EXPECT_EQ(window.count(), 0u);
  EXPECT_EQ(window.bytes(), 0u);
}

}  // namespace
}  // namespace efd

#include "src/wifi/network.hpp"

#include <gtest/gtest.h>

#include "src/net/meters.hpp"
#include "src/net/sources.hpp"

namespace efd::wifi {
namespace {

TEST(Mcs, RateLadderIsMonotonePerStreamGroup) {
  for (int i = 1; i < 8; ++i) {
    EXPECT_GT(Mcs::rate_mbps(i), Mcs::rate_mbps(i - 1));
    EXPECT_GT(Mcs::rate_mbps(i + 8), Mcs::rate_mbps(i + 7));
  }
}

TEST(Mcs, MaxRateIs130AsInPaper) {
  EXPECT_DOUBLE_EQ(Mcs::rate_mbps(15), 130.0);
  EXPECT_EQ(Mcs::streams(15), 2);
  EXPECT_EQ(Mcs::streams(7), 1);
}

TEST(Mcs, PickIsMaximalRateUnderThreshold) {
  for (double snr = -5.0; snr < 45.0; snr += 0.5) {
    const int m = Mcs::pick(snr);
    if (m < 0) {
      EXPECT_LT(snr, Mcs::required_snr_db(0));
      continue;
    }
    EXPECT_GE(snr, Mcs::required_snr_db(m));
    for (int other = 0; other < Mcs::kCount; ++other) {
      if (Mcs::rate_mbps(other) > Mcs::rate_mbps(m)) {
        EXPECT_LT(snr, Mcs::required_snr_db(other));
      }
    }
  }
}

TEST(Mcs, ErrorWaterfall) {
  EXPECT_LT(Mcs::mpdu_error_probability(7, Mcs::required_snr_db(7) + 3.0), 0.01);
  EXPECT_GT(Mcs::mpdu_error_probability(7, Mcs::required_snr_db(7) - 3.0), 0.95);
}

TEST(WifiChannel, SnrFallsWithDistance) {
  WifiChannel ch;
  ch.place_station(0, 0.0, 0.0);
  ch.place_station(1, 5.0, 0.0);
  ch.place_station(2, 40.0, 0.0);
  EXPECT_GT(ch.mean_snr_db(0, 1), ch.mean_snr_db(0, 2) + 10.0);
}

TEST(WifiChannel, ShadowingIsSymmetricSkewSmall) {
  WifiChannel ch;
  ch.place_station(0, 0.0, 0.0);
  ch.place_station(1, 12.0, 3.0);
  const double ab = ch.mean_snr_db(0, 1);
  const double ba = ch.mean_snr_db(1, 0);
  // WiFi asymmetry exists but is mild (§5): a couple of dB at most.
  EXPECT_LT(std::abs(ab - ba), 2.5);
}

TEST(WifiChannel, FastFadingVariesOverTime) {
  WifiChannel ch;
  ch.place_station(0, 0.0, 0.0);
  ch.place_station(1, 10.0, 0.0);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 200; ++i) {
    const double s = ch.snr_db(0, 1, sim::milliseconds(i * 60.0));
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_GT(hi - lo, 3.0);  // WiFi moves much more than PLC (Fig. 4)
}

struct WifiNetFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<WifiNetwork> net;

  void build(double dist) {
    net = std::make_unique<WifiNetwork>(sim, sim::Rng{3});
    net->add_station(0, 0.0, 0.0);
    net->add_station(1, dist, 0.0);
  }

  double run_saturated(double seconds) {
    net::ThroughputMeter meter;
    net->station(1).set_rx_handler(
        [&](const net::Packet& p, sim::Time t) { meter.on_packet(p, t); });
    net::UdpSource::Config cfg;
    cfg.src = 0;
    cfg.dst = 1;
    cfg.rate_bps = 400e6;
    net::UdpSource source(sim, net->station(0), cfg);
    const sim::Time start = sim.now();
    source.run(start, start + sim::seconds(seconds));
    sim.run_until(start + sim::seconds(seconds));
    meter.finish(sim.now());
    return meter.average_mbps(sim::seconds(seconds));
  }
};

TEST_F(WifiNetFixture, ShortLinkNearsPhyCeiling) {
  build(4.0);
  const double mbps = run_saturated(5.0);
  EXPECT_GT(mbps, 80.0);
  EXPECT_LT(mbps, 115.0);  // paper's TW tops out around 100 Mb/s (Fig. 3)
}

TEST_F(WifiNetFixture, LongLinkIsABlindSpot) {
  build(55.0);
  const double mbps = run_saturated(5.0);
  EXPECT_LT(mbps, 8.0);  // beyond ~35 m WiFi connectivity collapses (§4.1)
}

TEST_F(WifiNetFixture, MidLinkIsVariable) {
  build(14.0);
  net::ThroughputMeter meter;
  net->station(1).set_rx_handler(
      [&](const net::Packet& p, sim::Time t) { meter.on_packet(p, t); });
  net::UdpSource::Config cfg;
  cfg.src = 0;
  cfg.dst = 1;
  cfg.rate_bps = 400e6;
  net::UdpSource source(sim, net->station(0), cfg);
  source.run(sim::Time{}, sim::seconds(10));
  sim.run_until(sim::seconds(10));
  meter.finish(sim.now());
  const auto stats = meter.stats();
  EXPECT_GT(stats.mean(), 20.0);
  EXPECT_GT(stats.stddev(), 2.0);  // the WiFi jitteriness of Fig. 3/4
}

TEST_F(WifiNetFixture, McsListenerObservesFrameControl) {
  build(6.0);
  std::vector<McsRecord> records;
  net->medium().add_mcs_listener(
      [&](const McsRecord& r) { records.push_back(r); });
  run_saturated(1.0);
  ASSERT_GT(records.size(), 50u);
  for (const auto& r : records) {
    EXPECT_GE(r.mcs, 0);
    EXPECT_LT(r.mcs, Mcs::kCount);
    EXPECT_EQ(r.src, 0);
  }
}

TEST_F(WifiNetFixture, McsCapacityTracksDistance) {
  net = std::make_unique<WifiNetwork>(sim, sim::Rng{3});
  net->add_station(0, 0.0, 0.0);
  net->add_station(1, 4.0, 0.0);
  net->add_station(2, 30.0, 0.0);
  const double near = net->mcs_capacity_mbps(0, 1, sim::seconds(1));
  const double far = net->mcs_capacity_mbps(0, 2, sim::seconds(1));
  EXPECT_GT(near, far);
}

}  // namespace
}  // namespace efd::wifi

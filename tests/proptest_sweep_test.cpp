// The proptest sweep proper (ctest label `proptest`): N randomized
// scenarios through invariants + differential checks + the determinism
// gate, plus the harness acceptance test — a deliberately injected
// violation must be caught and shrunk to a minimal reproducer.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/testkit/proptest.hpp"

namespace efd::testkit {
namespace {

int sweep_count() {
  // CI legs size the sweep via EFD_PROPTEST_N (500 on the release leg,
  // reduced on sanitizers); the local default keeps `ctest -L proptest`
  // under a minute per test.
  if (const char* env = std::getenv("EFD_PROPTEST_N")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 60;
}

TEST(ProptestSweep, FixedSeedSweepIsCleanAndReproducible) {
  const auto report = run_proptest(20250815, sweep_count());
  EXPECT_TRUE(report.ok()) << report.summary();

  // Same-seed rerun: byte-identical observable surface.
  const auto rerun = run_proptest(20250815, sweep_count());
  EXPECT_EQ(report.combined_digest, rerun.combined_digest);
}

TEST(ProptestSweep, SecondSeedSweepIsClean) {
  const auto report = run_proptest(424242, sweep_count() / 2 + 1);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ProptestSweep, InjectedViolationIsCaughtAndShrunk) {
  // Simulate a "PB error probability lost its clamp" bug via the corruption
  // hook: the sweep must fail, identify the pberr-range invariant, and
  // shrink the first failing scenario to a small reproducer.
  ProptestOptions opts;
  opts.invariants.inject_pberr_offset = 1.5;
  const auto report = run_proptest(20250815, 12, opts);
  ASSERT_FALSE(report.ok());

  bool pberr_violation = false;
  for (const ScenarioVerdict& v : report.failures) {
    for (const Violation& viol : v.violations) {
      pberr_violation |= viol.invariant == "pberr-range";
    }
  }
  EXPECT_TRUE(pberr_violation) << report.summary();

  ASSERT_TRUE(report.has_shrunk);
  // The shrinker must reach a scenario no bigger than a 3-outlet grid while
  // the injected violation persists.
  EXPECT_LE(report.shrunk.n_outlets, 3) << report.shrunk.describe();
  EXPECT_FALSE(check_scenario(report.shrunk, opts).ok());
}

}  // namespace
}  // namespace efd::testkit

#include "src/grid/schedule.hpp"

#include <gtest/gtest.h>

namespace efd::grid {
namespace {

using sim::days;
using sim::hours;
using sim::minutes;

// Simulation epoch is Monday 00:00.
sim::Time at(int day, double hour) { return days(day) + hours(hour); }

TEST(Calendar, DayIndexAndWeekend) {
  EXPECT_EQ(Calendar::day_index(at(0, 12)), 0);
  EXPECT_EQ(Calendar::day_index(at(3, 23.9)), 3);
  EXPECT_FALSE(Calendar::is_weekend(at(4, 12)));  // Friday
  EXPECT_TRUE(Calendar::is_weekend(at(5, 12)));   // Saturday
  EXPECT_TRUE(Calendar::is_weekend(at(6, 12)));   // Sunday
  EXPECT_FALSE(Calendar::is_weekend(at(7, 12)));  // next Monday
}

TEST(Calendar, HourOfDay) {
  EXPECT_NEAR(Calendar::hour_of_day(at(0, 0.0)), 0.0, 1e-9);
  EXPECT_NEAR(Calendar::hour_of_day(at(2, 13.5)), 13.5, 1e-9);
  EXPECT_NEAR(Calendar::hour_of_day(at(1, 23.99)), 23.99, 1e-6);
}

TEST(Schedule, AlwaysOn) {
  const auto s = ActivitySchedule::always_on();
  EXPECT_TRUE(s.is_on(at(0, 3)));
  EXPECT_TRUE(s.is_on(at(6, 23)));
}

TEST(Schedule, OfficeLightsWeekdayWindow) {
  const auto s = ActivitySchedule::office_lights();
  EXPECT_FALSE(s.is_on(at(0, 7.0)));
  EXPECT_TRUE(s.is_on(at(0, 7.6)));
  EXPECT_TRUE(s.is_on(at(0, 20.9)));
  // The 21:00 sharp switch-off that steps the channel in Fig. 12.
  EXPECT_FALSE(s.is_on(at(0, 21.0)));
  EXPECT_FALSE(s.is_on(at(0, 23.0)));
}

TEST(Schedule, OfficeLightsOffOnWeekends) {
  const auto s = ActivitySchedule::office_lights();
  EXPECT_FALSE(s.is_on(at(5, 12)));
  EXPECT_FALSE(s.is_on(at(6, 12)));
}

TEST(Schedule, WorkstationOnDuringCoreHoursOnly) {
  const auto s = ActivitySchedule::workstation(1234);
  // Core hours (10:00-16:30) are always within [arrive, leave).
  EXPECT_TRUE(s.is_on(at(1, 12)));
  EXPECT_FALSE(s.is_on(at(1, 4)));
  EXPECT_FALSE(s.is_on(at(1, 23)));
  EXPECT_FALSE(s.is_on(at(5, 12)));  // weekend
}

TEST(Schedule, WorkstationArrivalVariesAcrossDays) {
  const auto s = ActivitySchedule::workstation(77);
  int on_at_9 = 0;
  for (int d = 0; d < 30; ++d) {
    if (d % 7 >= 5) continue;
    if (s.is_on(at(d, 9.0))) ++on_at_9;
  }
  // The per-day arrival offset in [8, 10) means 9:00 is sometimes before
  // arrival and sometimes after.
  EXPECT_GT(on_at_9, 2);
  EXPECT_LT(on_at_9, 21);
}

TEST(Schedule, DutyCycleHasExpectedDuty) {
  const auto s = ActivitySchedule::duty_cycle(minutes(10), 0.4, 99);
  int on = 0;
  const int samples = 10000;
  for (int i = 0; i < samples; ++i) {
    if (s.is_on(sim::seconds(i * 6.0))) ++on;
  }
  EXPECT_NEAR(on / static_cast<double>(samples), 0.4, 0.02);
}

TEST(Schedule, DutyCycleIsPeriodic) {
  const auto s = ActivitySchedule::duty_cycle(minutes(10), 0.5, 7);
  for (int i = 0; i < 200; ++i) {
    const auto t = sim::seconds(i * 3.1);
    EXPECT_EQ(s.is_on(t), s.is_on(t + minutes(10)));
  }
}

TEST(Schedule, IntermittentOnlyDuringWorkingHours) {
  const auto s = ActivitySchedule::intermittent(10.0, minutes(5), 3);
  for (int d : {0, 3}) {
    EXPECT_FALSE(s.is_on(at(d, 3)));
    EXPECT_FALSE(s.is_on(at(d, 22)));
  }
  EXPECT_FALSE(s.is_on(at(5, 12)));  // weekend
}

TEST(Schedule, IntermittentDutyScalesWithRate) {
  const auto slow = ActivitySchedule::intermittent(0.2, minutes(3), 5);
  const auto fast = ActivitySchedule::intermittent(2.0, minutes(3), 5);
  int on_slow = 0, on_fast = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto t = at(1, 8.0) + sim::seconds(i * 7.0);
    if (Calendar::hour_of_day(t) >= 19) break;
    on_slow += slow.is_on(t) ? 1 : 0;
    on_fast += fast.is_on(t) ? 1 : 0;
  }
  EXPECT_LT(on_slow * 3, on_fast);
}

TEST(Schedule, DeterministicAcrossInstances) {
  const auto a = ActivitySchedule::intermittent(1.0, minutes(4), 42);
  const auto b = ActivitySchedule::intermittent(1.0, minutes(4), 42);
  for (int i = 0; i < 500; ++i) {
    const auto t = at(2, 8.0) + sim::seconds(i * 13.0);
    EXPECT_EQ(a.is_on(t), b.is_on(t));
  }
}

class ScheduleStabilitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleStabilitySweep, WorkstationIsStableWithinAMinute) {
  // State should not flap at sub-minute scale: it is a function of hour-of-
  // day bounds, so two samples 1 s apart almost always agree.
  const auto s = ActivitySchedule::workstation(GetParam());
  int flips = 0;
  bool prev = s.is_on(at(1, 6.0));
  for (int i = 1; i < 24 * 3600; i += 60) {
    const bool cur = s.is_on(at(1, 6.0) + sim::seconds(i));
    if (cur != prev) ++flips;
    prev = cur;
  }
  EXPECT_LE(flips, 2);  // one on, one off per day
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleStabilitySweep,
                         ::testing::Values(1, 2, 3, 10, 99, 12345));

}  // namespace
}  // namespace efd::grid

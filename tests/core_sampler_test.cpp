#include "src/core/sampler.hpp"

#include <gtest/gtest.h>

#include "src/grid/appliance.hpp"
#include "src/sim/stats.hpp"

namespace efd::core {
namespace {

/// A one-link rig: clean 10 m cable, or a 60 m run with noisy kitchen loads
/// at the receiver end.
struct LinkRig {
  grid::PowerGrid grid;
  std::unique_ptr<plc::PlcChannel> channel;
  std::unique_ptr<plc::ChannelEstimator> estimator;

  explicit LinkRig(bool noisy) {
    const int a = grid.add_node("a");
    const int b = grid.add_node("b");
    // The clean link sits near 45 dB SNR — enough headroom that even the
    // biggest background impulses cannot reach it (a true "good link");
    // the noisy one adds panel loss and always-on heavy loads.
    grid.add_cable(a, b, noisy ? 60.0 : 10.0, noisy ? 34.0 : 18.0);
    if (noisy) {
      const int j = grid.add_node("j");
      grid.add_cable(b, j, 2.0);
      auto microwave = grid::make_appliance(grid::ApplianceType::kMicrowave, j, 3);
      microwave.schedule = grid::ActivitySchedule::always_on();
      grid.add_appliance(microwave);
      auto fridge = grid::make_appliance(grid::ApplianceType::kFridge, j, 4);
      fridge.schedule = grid::ActivitySchedule::always_on();
      grid.add_appliance(fridge);
    }
    channel = std::make_unique<plc::PlcChannel>(grid, plc::PhyParams::hpav());
    channel->attach_station(0, a);
    channel->attach_station(1, b);
    estimator = std::make_unique<plc::ChannelEstimator>(
        *channel, 0, 1, sim::Rng{11}, plc::ChannelEstimator::Config{});
  }
};

sim::Time noon() { return sim::days(1) + sim::hours(12); }

sim::RunningStats second_half_stats(const std::vector<BleSample>& trace) {
  sim::RunningStats stats;
  for (std::size_t i = trace.size() / 2; i < trace.size(); ++i) {
    stats.add(trace[i].ble_mbps);
  }
  return stats;
}

TEST(LinkTraceSampler, TraceHasRequestedCadence) {
  LinkRig rig(false);
  LinkTraceSampler sampler(*rig.channel, *rig.estimator, 0, 1, sim::Rng{1});
  const auto trace = sampler.run(noon(), noon() + sim::seconds(10));
  EXPECT_EQ(trace.size(), 200u);  // 10 s at 50 ms
  EXPECT_EQ(trace[1].t - trace[0].t, sim::milliseconds(50));
}

TEST(LinkTraceSampler, GoodLinkConvergesAndStaysStable) {
  LinkRig rig(false);
  LinkTraceSampler sampler(*rig.channel, *rig.estimator, 0, 1, sim::Rng{1});
  const auto trace = sampler.run(noon(), noon() + sim::seconds(60));
  const auto stats = second_half_stats(trace);
  EXPECT_GT(stats.mean(), 130.0);
  EXPECT_LT(stats.stddev(), 4.0);  // good links vary little (§6.2)
}

TEST(LinkTraceSampler, NoisyLinkHasLowerBleAndMoreVariance) {
  LinkRig noisy_rig(true);
  LinkTraceSampler noisy_sampler(*noisy_rig.channel, *noisy_rig.estimator, 0, 1,
                                 sim::Rng{1});
  const auto noisy = second_half_stats(
      noisy_sampler.run(noon(), noon() + sim::seconds(60)));

  LinkRig clean_rig(false);
  LinkTraceSampler clean_sampler(*clean_rig.channel, *clean_rig.estimator, 0, 1,
                                 sim::Rng{1});
  const auto clean = second_half_stats(
      clean_sampler.run(noon(), noon() + sim::seconds(60)));

  EXPECT_LT(noisy.mean(), clean.mean());
  // Link quality and variability are negatively correlated (§6.2, §8.1).
  EXPECT_GT(noisy.stddev(), clean.stddev());
}

TEST(ProbeTraceSampler, ConvergesFasterAtHigherRates) {
  // The Fig. 16 property, driven through the ProbeTraceSampler.
  const auto converge_time = [&](double rate) {
    LinkRig rig(false);
    ProbeTraceSampler::Config cfg;
    cfg.packets_per_second = rate;
    cfg.packet_bytes = 1300;
    ProbeTraceSampler sampler(*rig.channel, *rig.estimator, 0, 1, sim::Rng{2}, cfg);
    const auto trace =
        sampler.run(noon(), noon() + sim::seconds(2000), sim::seconds(5));
    const double final_ble = trace.back().ble_mbps;
    for (const auto& s : trace) {
      if (s.ble_mbps > 0.95 * final_ble) return (s.t - noon()).seconds();
    }
    return 2000.0;
  };
  EXPECT_LT(converge_time(50.0), converge_time(1.0));
}

TEST(ProbeTraceSampler, EstimationSurvivesPause) {
  // Fig. 17: estimation survives a probing pause.
  LinkRig rig(false);
  ProbeTraceSampler::Config cfg;
  cfg.packets_per_second = 20.0;
  ProbeTraceSampler sampler(*rig.channel, *rig.estimator, 0, 1, sim::Rng{2}, cfg);
  (void)sampler.run(noon(), noon() + sim::seconds(100), sim::seconds(1));
  const double before = rig.estimator->average_ble_mbps();
  // 7-minute pause: no samples processed, then probing resumes.
  const sim::Time resume = noon() + sim::seconds(100) + sim::minutes(7);
  const auto after =
      sampler.run(resume, resume + sim::seconds(10), sim::seconds(1));
  EXPECT_NEAR(after.back().ble_mbps, before, before * 0.12);
}

TEST(ProbeTraceSampler, SmallProbesClampToSingleSymbolRate) {
  // Fig. 18 through the sampler: 1 probe/s of 200 B converges to ~89.4.
  LinkRig rig(false);
  ProbeTraceSampler::Config cfg;
  cfg.packets_per_second = 1.0;
  cfg.packet_bytes = 200;
  ProbeTraceSampler sampler(*rig.channel, *rig.estimator, 0, 1, sim::Rng{2}, cfg);
  const auto trace =
      sampler.run(noon(), noon() + sim::seconds(3000), sim::seconds(10));
  EXPECT_NEAR(trace.back().ble_mbps,
              rig.channel->phy().single_pb_symbol_rate_mbps(), 5.0);
}

}  // namespace
}  // namespace efd::core

// NAN diversity/relay chaos suite: seeded fault storms over the
// neighborhood-area network must leave every digest, fault trace and
// redundancy counter byte-identical across shard counts, and first-wins
// duplication must degrade gracefully — never a worse delivery count than
// either single medium — when one medium is blacked out for the whole run.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/grid/nan.hpp"
#include "src/sim/rng.hpp"
#include "src/testbed/nan.hpp"

namespace efd::testbed {
namespace {

/// 4 transformers over 2 feeders: small enough for tier-like runtimes, big
/// enough to have both MV feeder-run and feeder-head WiFi crossings.
NanRunConfig small_nan(int n_shards) {
  NanRunConfig cfg;
  cfg.nan.n_meters = 36;
  cfg.nan.meters_per_transformer = 9;
  cfg.nan.transformers_per_feeder = 2;
  cfg.nan.stations_per_transformer = 5;
  cfg.nan.seed = 42;
  cfg.n_shards = n_shards;
  cfg.duration = sim::milliseconds(80);
  cfg.report_interval = sim::milliseconds(2);
  cfg.p_remote = 0.3;
  return cfg;
}

/// A deliberate storm touching every NAN fault kind: a PLC surge, a WiFi
/// jam, a browned-out and a dead transformer, and a severed crossing (no
/// fallback path exists in the NAN, so partitions always drop).
NanRunConfig stormy_nan(int n_shards) {
  NanRunConfig cfg = small_nan(n_shards);
  cfg.faults.blackout(sim::milliseconds(15), sim::milliseconds(20), 0, 1.0)
      .wifi_jam(sim::milliseconds(20), sim::milliseconds(25), 2, 200.0)
      .board_brownout(sim::milliseconds(30), sim::milliseconds(30), 3, 0.6)
      .board_blackout(sim::milliseconds(35), sim::milliseconds(20), 1)
      .link_partition(sim::milliseconds(25), sim::milliseconds(30), 0);
  return cfg;
}

TEST(ChaosNan, StormTracesAndDigestsAreShardCountInvariant) {
  const NanResult r1 = run_nan(stormy_nan(1));
  ASSERT_GT(r1.events, 0u);
  ASSERT_GT(r1.delivered, 0u);
  ASSERT_GT(r1.fault_events, 0u);
  ASSERT_FALSE(r1.fault_trace.empty());
  ASSERT_EQ(r1.transformer_digests.size(), 4u);
  // Diversity mode must actually have spent redundancy and suppressed the
  // losing copies.
  EXPECT_GT(r1.dup_copies, 0u);
  EXPECT_GT(r1.suppressed, 0u);
  EXPECT_GT(r1.wins_plc + r1.wins_wifi, 0u);
  for (const int shards : {2, 4}) {
    const NanResult r = run_nan(stormy_nan(shards));
    EXPECT_EQ(r.digest, r1.digest) << "shards=" << shards;
    EXPECT_EQ(r.transformer_digests, r1.transformer_digests) << "shards=" << shards;
    EXPECT_EQ(r.fault_trace, r1.fault_trace) << "shards=" << shards;
    EXPECT_EQ(r.fault_events, r1.fault_events) << "shards=" << shards;
    EXPECT_EQ(r.delivered, r1.delivered) << "shards=" << shards;
    EXPECT_EQ(r.delivered_remote, r1.delivered_remote) << "shards=" << shards;
    EXPECT_EQ(r.dup_copies, r1.dup_copies) << "shards=" << shards;
    EXPECT_EQ(r.dup_bytes, r1.dup_bytes) << "shards=" << shards;
    EXPECT_EQ(r.wins_plc, r1.wins_plc) << "shards=" << shards;
    EXPECT_EQ(r.wins_wifi, r1.wins_wifi) << "shards=" << shards;
    EXPECT_EQ(r.suppressed, r1.suppressed) << "shards=" << shards;
    EXPECT_EQ(r.stragglers, r1.stragglers) << "shards=" << shards;
    EXPECT_EQ(r.dead_drops, r1.dead_drops) << "shards=" << shards;
    EXPECT_EQ(r.partition_drops, r1.partition_drops) << "shards=" << shards;
    EXPECT_EQ(r.relay_forwards, r1.relay_forwards) << "shards=" << shards;
  }
}

TEST(ChaosNan, StormChangesTheDigestButNotTheFaultFreeOne) {
  const NanResult clean = run_nan(small_nan(2));
  const NanResult storm = run_nan(stormy_nan(2));
  EXPECT_NE(storm.digest, clean.digest);
  EXPECT_EQ(clean.fault_events, 0u);
  EXPECT_TRUE(clean.fault_trace.empty());
  EXPECT_EQ(clean.dead_drops, 0u);
  EXPECT_EQ(clean.partition_drops, 0u);
}

/// One whole-run single-medium blackout, shared by every mode under test so
/// the per-tick rng draws (mode-independent by construction) line up packet
/// for packet.
NanRunConfig blacked_out(DiversityMode mode, fault::FaultKind kind) {
  NanRunConfig cfg = small_nan(2);
  cfg.mode = mode;
  const double severity = kind == fault::FaultKind::kWifiJam ? 200.0 : 1.0;
  for (int t = 0; t < 4; ++t) {
    cfg.faults.add({sim::microseconds(1), sim::milliseconds(200), kind, t, severity});
  }
  return cfg;
}

TEST(ChaosNan, DiversityNeverWorseThanEitherMediumUnderPlcBlackout) {
  // The PLC side is dead for the entire run: per-packet duplication must
  // ride the WiFi copies and deliver at least as much as either
  // single-medium baseline (first-wins has no failure mode that loses
  // reports both media would have carried).
  const fault::FaultKind kind = fault::FaultKind::kPlcBlackout;
  const NanResult div = run_nan(blacked_out(DiversityMode::kDiversity, kind));
  const NanResult plc = run_nan(blacked_out(DiversityMode::kPlcOnly, kind));
  const NanResult wifi = run_nan(blacked_out(DiversityMode::kWifiOnly, kind));
  ASSERT_EQ(div.offered, plc.offered);   // identical report pattern
  ASSERT_EQ(div.offered, wifi.offered);
  EXPECT_GE(div.delivered, plc.delivered);
  EXPECT_GE(div.delivered, wifi.delivered);
  // Under a total PLC blackout every win is a WiFi win.
  EXPECT_EQ(div.wins_plc, 0u);
  EXPECT_GT(div.wins_wifi, 0u);
}

TEST(ChaosNan, DiversityNeverWorseThanEitherMediumUnderWifiJam) {
  const fault::FaultKind kind = fault::FaultKind::kWifiJam;
  const NanResult div = run_nan(blacked_out(DiversityMode::kDiversity, kind));
  const NanResult plc = run_nan(blacked_out(DiversityMode::kPlcOnly, kind));
  const NanResult wifi = run_nan(blacked_out(DiversityMode::kWifiOnly, kind));
  ASSERT_EQ(div.offered, plc.offered);
  ASSERT_EQ(div.offered, wifi.offered);
  EXPECT_GE(div.delivered, plc.delivered);
  EXPECT_GE(div.delivered, wifi.delivered);
  EXPECT_EQ(div.wins_wifi, 0u);
  EXPECT_GT(div.wins_plc, 0u);
}

TEST(ChaosNan, RelayEngagesAndStaysShardCountInvariant) {
  // An aggressive connectivity threshold forces below-threshold meters onto
  // multi-hop PLC paths; the store-and-forward hops must execute and the
  // whole relayed timeline must stay a pure function of the config.
  NanRunConfig cfg = small_nan(1);
  cfg.nan.seed = 19;  // this feeder has three below-threshold drop tails
  cfg.mode = DiversityMode::kPlcOnly;
  cfg.relay.connect_etx = 1.05;
  cfg.relay.max_hops = 3;
  const NanResult r1 = run_nan(cfg);
  EXPECT_GT(r1.relay_meters, 0u);
  EXPECT_GT(r1.relay_forwards, 0u);
  EXPECT_GE(r1.relay_hops_max, 2);
  cfg.n_shards = 4;
  const NanResult r4 = run_nan(cfg);
  EXPECT_EQ(r4.digest, r1.digest);
  EXPECT_EQ(r4.transformer_digests, r1.transformer_digests);
  EXPECT_EQ(r4.relay_meters, r1.relay_meters);
  EXPECT_EQ(r4.relay_forwards, r1.relay_forwards);
  EXPECT_EQ(r4.relay_hops_max, r1.relay_hops_max);

  // Relaying off (max_hops=1 keeps only the direct link) changes the
  // timeline: the forwards disappear.
  cfg.n_shards = 1;
  cfg.relay_enabled = false;
  const NanResult off = run_nan(cfg);
  EXPECT_EQ(off.relay_meters, 0u);
  EXPECT_EQ(off.relay_forwards, 0u);
}

TEST(ChaosNan, SeededNanStormIsSeedDeterministic) {
  fault::FaultPlan::StormConfig sc;
  sc.start = sim::milliseconds(10);
  sc.horizon = sim::milliseconds(60);
  sc.n_faults = 6;
  sc.min_duration = sim::milliseconds(5);
  sc.max_duration = sim::milliseconds(25);
  sc.kinds = {fault::FaultKind::kPlcBlackout, fault::FaultKind::kWifiJam,
              fault::FaultKind::kBoardBrownout};
  sc.n_targets = 4;
  const fault::FaultPlan plan = fault::FaultPlan::random_storm(sim::Rng{7}, sc);
  ASSERT_EQ(plan.size(), 6u);
  NanRunConfig a = small_nan(1);
  a.faults = plan;
  NanRunConfig b = small_nan(4);
  b.faults = fault::FaultPlan::random_storm(sim::Rng{7}, sc);
  const NanResult ra = run_nan(a);
  const NanResult rb = run_nan(b);
  EXPECT_GT(ra.fault_events, 0u);
  EXPECT_EQ(rb.digest, ra.digest);
  EXPECT_EQ(rb.fault_trace, ra.fault_trace);
  EXPECT_EQ(rb.transformer_digests, ra.transformer_digests);
}

TEST(ChaosNan, BoundedMailboxesPreserveTheStormDigest) {
  const NanResult unbounded = run_nan(stormy_nan(4));
  NanRunConfig cfg = stormy_nan(4);
  cfg.mailbox_capacity = 1;  // worst case: stall at every occupied horizon
  const NanResult bounded = run_nan(cfg);
  EXPECT_EQ(bounded.digest, unbounded.digest);
  EXPECT_EQ(bounded.fault_trace, unbounded.fault_trace);
  EXPECT_EQ(bounded.transformer_digests, unbounded.transformer_digests);
  EXPECT_GT(bounded.mailbox_peak, 0u);
}

TEST(ChaosNan, ResetAndRebuildReplaysTheIdenticalNan) {
  NanWorld world(stormy_nan(2));
  world.run();
  const NanResult first = world.result();
  world.reset_and_rebuild();
  world.run();
  const NanResult second = world.result();
  EXPECT_EQ(second.digest, first.digest);
  EXPECT_EQ(second.fault_trace, first.fault_trace);
  EXPECT_EQ(second.transformer_digests, first.transformer_digests);
}

}  // namespace
}  // namespace efd::testbed

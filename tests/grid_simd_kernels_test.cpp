// Odd-tail and dispatch-selection coverage of the batch carrier kernels
// (src/grid/simd.hpp). Every implementation the binary carries that this
// machine can run is swept over carrier counts that exercise full vector
// blocks, partial tails, and the single-element degenerate case; the
// transcendental kernels are bounded against naive double-precision
// references and the element-wise kernels must match the scalar entry
// bit for bit (the EFD_SIMD=scalar byte-stability contract).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/grid/simd.hpp"
#include "src/obs/obs.hpp"
#include "src/plc/modulation.hpp"
#include "src/plc/phy.hpp"
#include "src/plc/tone_map.hpp"
#include "src/sim/rng.hpp"

namespace efd {
namespace {

using grid::simd::CarrierKernels;

// Full AVX2 blocks (916 = 4*229), odd tails of every phase, and the HPAV /
// AV500 carrier counts themselves.
const std::size_t kSizes[] = {1, 7, 916, 917, 2232};

std::vector<double> random_db(sim::Rng& rng, std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Sentinel-padded output buffer: checks a kernel writes exactly n values.
struct Padded {
  static constexpr double kSentinel = -777.25;
  std::vector<double> buf;
  explicit Padded(std::size_t n) : buf(n + 8, kSentinel) {}
  double* data() { return buf.data(); }
  void expect_no_overrun(std::size_t n, const char* what) {
    for (std::size_t i = n; i < buf.size(); ++i) {
      ASSERT_EQ(buf[i], kSentinel) << what << ": wrote past element " << n;
    }
  }
};

class KernelSweep : public ::testing::TestWithParam<const CarrierKernels*> {};

TEST_P(KernelSweep, DbConversionsMatchNaiveReference) {
  const CarrierKernels& k = *GetParam();
  sim::Rng rng{0xc01u};
  for (const std::size_t n : kSizes) {
    const std::vector<double> db = random_db(rng, n, -120.0, 80.0);
    Padded out(n);
    k.db_to_linear_n(db.data(), out.data(), n);
    out.expect_no_overrun(n, "db_to_linear_n");
    for (std::size_t i = 0; i < n; ++i) {
      const double ref = std::pow(10.0, db[i] / 10.0);
      EXPECT_NEAR(out.buf[i], ref, 1e-12 * std::abs(ref))
          << k.name << " n=" << n << " i=" << i;
    }
    Padded back(n);
    k.linear_to_db_n(out.data(), back.data(), n);
    back.expect_no_overrun(n, "linear_to_db_n");
    for (std::size_t i = 0; i < n; ++i) {
      const double ref = 10.0 * std::log10(out.buf[i]);
      EXPECT_NEAR(back.buf[i], ref, 1e-12 * std::max(std::abs(ref), 1e-9))
          << k.name << " n=" << n << " i=" << i;
    }
  }
}

TEST_P(KernelSweep, SumDbToLinearMatchesNaiveSum) {
  const CarrierKernels& k = *GetParam();
  sim::Rng rng{0x5e2u};
  for (const std::size_t n : kSizes) {
    const std::vector<double> db = random_db(rng, n, -40.0, 45.0);
    double ref = 0.0;
    for (double v : db) ref += std::pow(10.0, v / 10.0);
    const double sum = k.sum_db_to_linear_n(db.data(), n);
    EXPECT_NEAR(sum, ref, 1e-12 * ref) << k.name << " n=" << n;
  }
}

TEST_P(KernelSweep, ElementwiseKernelsAreBitIdenticalToScalar) {
  const CarrierKernels& k = *GetParam();
  const CarrierKernels& sc = grid::simd::scalar_kernels();
  sim::Rng rng{0xe1eu};
  for (const std::size_t n : kSizes) {
    const std::vector<double> x = random_db(rng, n, -60.0, 60.0);
    const std::vector<double> y = random_db(rng, n, -60.0, 60.0);
    Padded a(n), b(n);

    k.affine_n(1.875, -0.375, x.data(), a.data(), n);
    sc.affine_n(1.875, -0.375, x.data(), b.data(), n);
    a.expect_no_overrun(n, "affine_n");
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(a.buf[i], b.buf[i]) << k.name << " affine n=" << n << " i=" << i;

    k.accumulate_notch_n(0.5, 7.25, y.data(), a.data(), n);
    sc.accumulate_notch_n(0.5, 7.25, y.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(a.buf[i], b.buf[i]) << k.name << " notch n=" << n << " i=" << i;

    k.accumulate_scaled_n(0.037, x.data(), a.data(), n);
    sc.accumulate_scaled_n(0.037, x.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(a.buf[i], b.buf[i]) << k.name << " scaled n=" << n << " i=" << i;

    k.assemble_snr_n(55.0, x.data(), y.data(), a.data(), n);
    sc.assemble_snr_n(55.0, x.data(), y.data(), b.data(), n);
    a.expect_no_overrun(n, "assemble_snr_n");
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(a.buf[i], b.buf[i]) << k.name << " snr n=" << n << " i=" << i;

    // shift_n with in == out (the in-place contract channel.cpp relies on).
    k.shift_n(a.data(), 2.125, a.data(), n);
    sc.shift_n(b.data(), 2.125, b.data(), n);
    a.expect_no_overrun(n, "shift_n");
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(a.buf[i], b.buf[i]) << k.name << " shift n=" << n << " i=" << i;
  }
}

TEST_P(KernelSweep, BerWeightedSumMatchesNaiveLutWalk) {
  const CarrierKernels& k = *GetParam();
  const grid::simd::InterpTableView lut = plc::ber_lut_view();
  sim::Rng rng{0xbe55u};
  for (const std::size_t n : kSizes) {
    // SNR range pushes through both clamp edges of the LUT domain.
    const std::vector<double> snr = random_db(rng, n, -95.0, 70.0);
    std::vector<std::int32_t> rows(n);
    std::vector<double> bits(n);
    for (std::size_t i = 0; i < n; ++i) {
      const int m = rng.uniform_int(0, plc::kModulationCount - 1);
      rows[i] = m * lut.size;
      bits[i] = static_cast<double>(plc::kBitsPerSymbol[static_cast<std::size_t>(m)]);
    }
    double wb = -1.0, tb = -1.0;
    k.ber_weighted_sum_n(lut, rows.data(), bits.data(), snr.data(), 7.0, n, &wb,
                         &tb);
    double ref_wb = 0.0, ref_tb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (bits[i] == 0.0) continue;
      const auto m = static_cast<plc::Modulation>(rows[i] / lut.size);
      ref_wb += plc::uncoded_ber(m, snr[i] + 7.0) * bits[i];
      ref_tb += bits[i];
    }
    EXPECT_NEAR(wb, ref_wb, 1e-9 * std::max(ref_wb, 1.0)) << k.name << " n=" << n;
    EXPECT_EQ(tb, ref_tb) << k.name << " n=" << n;
  }
}

TEST_P(KernelSweep, ToneMapPbErrorMatchesDefaultPath) {
  const CarrierKernels& k = *GetParam();
  plc::PhyParams phy;
  sim::Rng rng{0x70e1u};
  const auto n = static_cast<std::size_t>(phy.band.n_carriers);
  const std::vector<double> snr = random_db(rng, n, -15.0, 40.0);
  const plc::ToneMap tm = plc::ToneMap::from_snr(snr, 2.0, phy, 0.0, 1);
  const double via_kernel = tm.pb_error_probability(snr, phy, k);
  const double via_scalar =
      tm.pb_error_probability(snr, phy, grid::simd::scalar_kernels());
  EXPECT_NEAR(via_kernel, via_scalar, 5e-3) << k.name;
}

TEST_P(KernelSweep, RoboMeanLinearSnrClampBoundary) {
  const CarrierKernels& k = *GetParam();
  plc::PhyParams phy;
  const auto n = static_cast<std::size_t>(phy.band.n_carriers);
  const plc::ToneMap robo = plc::ToneMap::robo(phy);
  // Deep in the clamp region: mean linear SNR far below the 1e-6 floor, so
  // every implementation must land on the identical clamped combined SNR.
  const std::vector<double> abyss(n, -200.0);
  const double p_k = robo.pb_error_probability(abyss, phy, k);
  const double p_s =
      robo.pb_error_probability(abyss, phy, grid::simd::scalar_kernels());
  EXPECT_EQ(p_k, p_s) << k.name << " below clamp";
  // Just above the floor: mean linear = 10^(-59/10) ~ 1.26e-6 > 1e-6, the
  // clamp must NOT engage and the combining math must agree within the
  // PB-error tolerance.
  const std::vector<double> edge(n, -59.0);
  EXPECT_NEAR(robo.pb_error_probability(edge, phy, k),
              robo.pb_error_probability(edge, phy, grid::simd::scalar_kernels()),
              5e-3)
      << k.name << " above clamp";
}

std::string kernel_name(const ::testing::TestParamInfo<const CarrierKernels*>& i) {
  return i.param->name;
}

INSTANTIATE_TEST_SUITE_P(AllImpls, KernelSweep,
                         ::testing::ValuesIn(grid::simd::available_kernels().begin(),
                                             grid::simd::available_kernels().end()),
                         kernel_name);

TEST(KernelSelection, ScalarIsAlwaysHonored) {
  EXPECT_STREQ(grid::simd::select_kernels("scalar").name, "scalar");
}

TEST(KernelSelection, AutoPicksTheBestAvailable) {
  const CarrierKernels& best = grid::simd::select_kernels("auto");
  if (grid::simd::avx2_kernels() != nullptr) {
    EXPECT_EQ(&best, grid::simd::avx2_kernels());
  } else if (grid::simd::neon_kernels() != nullptr) {
    EXPECT_EQ(&best, grid::simd::neon_kernels());
  } else {
    EXPECT_EQ(&best, &grid::simd::scalar_kernels());
  }
  // Unknown names degrade to the same choice instead of failing.
  EXPECT_EQ(&grid::simd::select_kernels("bogus-isa"), &best);
  EXPECT_EQ(&grid::simd::select_kernels(""), &best);
}

TEST(KernelSelection, ExplicitIsaFallsBackWhenUnavailable) {
  if (grid::simd::avx2_kernels() == nullptr) {
    EXPECT_NE(grid::simd::select_kernels("avx2").name, std::string("avx2"));
  } else {
    EXPECT_STREQ(grid::simd::select_kernels("avx2").name, "avx2");
  }
}

TEST(KernelSelection, AvailableListStartsWithScalar) {
  const auto list = grid::simd::available_kernels();
  ASSERT_GE(list.size(), 1u);
  EXPECT_EQ(list[0], &grid::simd::scalar_kernels());
  for (const CarrierKernels* k : list) {
    EXPECT_GE(grid::simd::impl_index(*k), 0);
    EXPECT_LE(grid::simd::impl_index(*k), 2);
  }
}

TEST(AlignedWorkspace, BuffersAre64ByteAlignedAndGrowPreservingContents) {
  grid::AlignedVec v;
  v.resize(7);
  for (std::size_t i = 0; i < 7; ++i) v[i] = static_cast<double>(i) * 1.5;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % grid::AlignedVec::kAlign,
            0u);
  const std::size_t big = 2232;
  v.reserve(big);
  ASSERT_EQ(v.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(v[i], static_cast<double>(i) * 1.5) << "grow lost element " << i;
  }
  v.resize(big);
  EXPECT_EQ(v.size(), big);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % grid::AlignedVec::kAlign,
            0u);
  v.assign(917, 3.25);
  EXPECT_EQ(v.size(), 917u);
  for (std::size_t i = 0; i < 917; ++i) ASSERT_EQ(v[i], 3.25);
}

TEST(AlignedWorkspace, ReserveCarriersFrontLoadsAllocations) {
  grid::CarrierWorkspace ws;
  ws.reserve_carriers(917);
  ws.att_db.resize(917);
  const double* before = ws.att_db.data();
  ws.att_db.resize(917);  // no growth, no reallocation
  EXPECT_EQ(ws.att_db.data(), before);
  EXPECT_EQ(ws.noise_db.size(), 0u) << "reserve must not change logical sizes";
  ws.noise_db.resize(917);
  EXPECT_EQ(ws.noise_db.size(), 917u);
}

TEST(AlignedWorkspace, GuardIsSequentiallyReusable) {
  grid::CarrierWorkspace ws;
  {
    grid::CarrierWorkspace::Guard g1(ws);
  }
  {
    grid::CarrierWorkspace::Guard g2(ws);  // released guard can be retaken
  }
  SUCCEED();
}

TEST(KernelSelection, ActiveKernelsRecordsImplGauge) {
  const CarrierKernels& k = grid::simd::active_kernels();
  EXPECT_EQ(grid::simd::active_impl_index(), grid::simd::impl_index(k));
  EXPECT_STREQ(grid::simd::active_impl_name(), k.name);
  const std::string snap = obs::snapshot_json();
  EXPECT_NE(snap.find("carrier_math.impl"), std::string::npos);
}

}  // namespace
}  // namespace efd

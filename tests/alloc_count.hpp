#pragma once

// Shared counting-allocator fixture for allocation-regression tests: replaces
// the global operator new/delete with versions that count every heap
// allocation in the process, so a test can pin a code path to zero (or N)
// allocations. Include from exactly ONE translation unit per test binary —
// replacement allocation functions must not be inline, so a second including
// TU in the same binary would violate the one-definition rule at link time.
//
// Used by obs_disabled_test (the EFD_* macros leave zero residue when
// compiled out) and sim_event_engine_test (steady-state schedule+dispatch of
// inline-capture events performs no heap allocation).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace efd::testsupport {

/// Heap allocations since process start (every operator new, any thread).
inline std::atomic<std::uint64_t> g_allocations{0};

/// Bytes requested from operator new since process start (requested, not
/// rounded-up — enough to pin "how much" as well as "how often").
inline std::atomic<std::uint64_t> g_allocated_bytes{0};

/// Allocations performed while an instance is alive. Construct, run the code
/// under test, then read `count()` / `bytes()`.
class AllocationWindow {
 public:
  AllocationWindow()
      : start_(g_allocations.load()), start_bytes_(g_allocated_bytes.load()) {}
  [[nodiscard]] std::uint64_t count() const {
    return g_allocations.load() - start_;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return g_allocated_bytes.load() - start_bytes_;
  }

 private:
  std::uint64_t start_;
  std::uint64_t start_bytes_;
};

}  // namespace efd::testsupport

void* operator new(std::size_t size) {
  efd::testsupport::g_allocations.fetch_add(1, std::memory_order_relaxed);
  efd::testsupport::g_allocated_bytes.fetch_add(size,
                                                std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// efd::obs profiler: scope nesting folds into the expected tree, open
// (unbalanced) scopes are credited their elapsed-so-far, cross-thread merge
// is deterministic in structure and counts, depth overflow drops instead of
// corrupting, and reset() isolates workloads inside one process.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>

#include "src/obs/obs.hpp"

namespace efd {
namespace {

class ObsProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_prof_enabled(true);
    obs::ProfileRegistry::instance().reset();
  }
  void TearDown() override { obs::set_prof_enabled(true); }
};

TEST_F(ObsProfileTest, NestedScopesFoldIntoTree) {
  {
    EFD_PROF_SCOPE("proftest.outer");
    for (int i = 0; i < 3; ++i) {
      EFD_PROF_SCOPE("proftest.inner");
    }
  }
  const auto snap = obs::ProfileRegistry::instance().snapshot();
  ASSERT_TRUE(snap.enabled);
  const obs::ProfileNode* outer = snap.find("proftest.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const obs::ProfileNode* inner = snap.find("proftest.outer/proftest.inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 3u);
  // The inner scope is nested, not a sibling of the outer one.
  EXPECT_EQ(snap.find("proftest.inner"), nullptr);
  // Totals are inclusive, self is the non-child remainder.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_GE(outer->self_ns, 0);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
}

TEST_F(ObsProfileTest, OpenScopeIsCreditedElapsedSoFar) {
  // Snapshot taken while a scope is still open: the period has not completed
  // (count 0) but its elapsed-so-far is included in the totals — this is
  // what makes a bench's root track wall clock while the outermost scope is
  // still alive during reporting.
  EFD_PROF_SCOPE("proftest.open");
  const auto snap = obs::ProfileRegistry::instance().snapshot();
  const obs::ProfileNode* open = snap.find("proftest.open");
  ASSERT_NE(open, nullptr);
  EXPECT_EQ(open->count, 0u);
  EXPECT_GT(open->total_ns, 0);
  EXPECT_GE(snap.root.total_ns, open->total_ns);
}

TEST_F(ObsProfileTest, DepthOverflowDropsInsteadOfCorrupting) {
  std::function<void(int)> rec = [&rec](int levels) {
    EFD_PROF_SCOPE("proftest.deep");
    if (levels > 1) rec(levels - 1);
  };
  rec(obs::kMaxProfDepth + 10);
  const auto snap = obs::ProfileRegistry::instance().snapshot();
  EXPECT_GE(snap.dropped, 10u);
  // The shadow stack unwound cleanly: a fresh top-level scope still lands at
  // the root level.
  {
    EFD_PROF_SCOPE("proftest.after_overflow");
  }
  const auto snap2 = obs::ProfileRegistry::instance().snapshot();
  const obs::ProfileNode* after = snap2.find("proftest.after_overflow");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->count, 1u);
}

TEST_F(ObsProfileTest, EqualNameContentMergesAcrossDistinctPointers) {
  // Two distinct char arrays with equal content (as produced by the same
  // literal in different translation units) must fold into one node.
  static const char kNameA[] = "proftest.same_content";
  static const char kNameB[] = "proftest.same_content";
  ASSERT_NE(static_cast<const void*>(kNameA), static_cast<const void*>(kNameB));
  {
    obs::ProfScope a(kNameA);
  }
  {
    obs::ProfScope b(kNameB);
  }
  const auto snap = obs::ProfileRegistry::instance().snapshot();
  const obs::ProfileNode* node = snap.find("proftest.same_content");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 2u);
}

TEST_F(ObsProfileTest, CrossThreadMergeIsDeterministic) {
  // Two worker threads profile the same hierarchy; the fold merges them by
  // name into one tree with per-thread slices. Threads are joined before
  // snapshotting, so the result is quiescent-exact; two snapshots of the
  // same quiescent state must agree in structure and counts.
  const auto work = [] {
    for (int i = 0; i < 5; ++i) {
      EFD_PROF_SCOPE("proftest.worker");
      EFD_PROF_SCOPE("proftest.step");
    }
  };
  std::thread(work).join();
  std::thread(work).join();
  const auto snap = obs::ProfileRegistry::instance().snapshot();
  const obs::ProfileNode* worker = snap.find("proftest.worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->count, 10u);
  ASSERT_EQ(worker->threads.size(), 2u);
  EXPECT_EQ(worker->threads[0].count, 5u);
  EXPECT_EQ(worker->threads[1].count, 5u);
  const obs::ProfileNode* step = snap.find("proftest.worker/proftest.step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->count, 10u);
  // cpu_total_ns sums threads; the root reports the busiest single thread.
  EXPECT_GE(snap.cpu_total_ns, snap.root.total_ns);

  const auto again = obs::ProfileRegistry::instance().snapshot();
  EXPECT_EQ(snap.to_json(), again.to_json());
}

TEST_F(ObsProfileTest, ResetZeroesCountsAndTotals) {
  {
    EFD_PROF_SCOPE("proftest.reset_me");
  }
  obs::ProfileRegistry::instance().reset();
  const auto snap = obs::ProfileRegistry::instance().snapshot();
  const obs::ProfileNode* node = snap.find("proftest.reset_me");
  if (node != nullptr) {  // structure may be kept; the numbers must not be
    EXPECT_EQ(node->count, 0u);
  }
  EXPECT_EQ(snap.dropped, 0u);
}

TEST_F(ObsProfileTest, RuntimeDisabledRecordsNothing) {
  obs::set_prof_enabled(false);
  {
    EFD_PROF_SCOPE("proftest.while_disabled");
  }
  obs::set_prof_enabled(true);
  const auto snap = obs::ProfileRegistry::instance().snapshot();
  EXPECT_EQ(snap.find("proftest.while_disabled"), nullptr);
}

TEST_F(ObsProfileTest, ToJsonEmitsFlamegraphFields) {
  {
    EFD_PROF_SCOPE("proftest.json");
  }
  const auto snap = obs::ProfileRegistry::instance().snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"name\": \"(root)\""), std::string::npos);
  EXPECT_NE(json.find("\"proftest.json\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"self_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

}  // namespace
}  // namespace efd

#include "src/core/etx.hpp"

#include <gtest/gtest.h>

namespace efd::core {
namespace {

TEST(BroadcastEtx, LossRateAndEtx) {
  BroadcastEtx etx;
  etx.sent = 1000;
  etx.received = 990;
  EXPECT_NEAR(etx.loss_rate(), 0.01, 1e-12);
  EXPECT_NEAR(etx.etx(), 1.0 / 0.99, 1e-9);
}

TEST(BroadcastEtx, NoTrafficIsLossless) {
  BroadcastEtx etx;
  EXPECT_DOUBLE_EQ(etx.loss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(etx.etx(), 1.0);
}

TEST(BroadcastEtx, DeadLinkIsCapped) {
  BroadcastEtx etx;
  etx.sent = 100;
  etx.received = 0;
  EXPECT_DOUBLE_EQ(etx.loss_rate(), 1.0);
  EXPECT_GE(etx.etx(), 1e5);
}

TEST(PredictedUEtx, PerfectChannelIsOneTransmission) {
  EXPECT_NEAR(predicted_u_etx(0.0, 3), 1.0, 1e-12);
}

TEST(PredictedUEtx, MonotoneInPberr) {
  double prev = 0.0;
  for (double p = 0.0; p <= 0.6; p += 0.05) {
    const double u = predicted_u_etx(p, 3);
    EXPECT_GT(u, prev);
    prev = u;
  }
}

TEST(PredictedUEtx, MorePbsNeedMoreTransmissions) {
  EXPECT_LT(predicted_u_etx(0.2, 1), predicted_u_etx(0.2, 3));
  EXPECT_LT(predicted_u_etx(0.2, 3), predicted_u_etx(0.2, 10));
}

TEST(PredictedUEtx, SinglePbMatchesGeometricMean) {
  // n=1: E[Geom(1-p)] = 1/(1-p).
  for (double p : {0.1, 0.3, 0.5}) {
    EXPECT_NEAR(predicted_u_etx(p, 1), 1.0 / (1.0 - p), 1e-6);
  }
}

TEST(PredictedUEtx, PaperRangeIsModest) {
  // Fig. 22: PBerr up to 0.4 maps to U-ETX around 1-2.5 for 3-PB packets.
  const double u = predicted_u_etx(0.4, 3);
  EXPECT_GT(u, 1.5);
  EXPECT_LT(u, 3.0);
}

std::vector<plc::SofRecord> synthetic_records(
    const std::vector<double>& start_times_ms) {
  std::vector<plc::SofRecord> records;
  for (double t : start_times_ms) {
    plc::SofRecord r;
    r.start = sim::milliseconds(t);
    r.end = r.start + sim::microseconds(500);
    r.src = 0;
    r.dst = 1;
    records.push_back(r);
  }
  return records;
}

TEST(RetransmissionAnalysis, NoRetransmissions) {
  // Frames 75 ms apart: all are new transmissions (window is 10 ms).
  const auto records = synthetic_records({0, 75, 150, 225});
  const auto result = RetransmissionAnalysis{}.analyze(records);
  EXPECT_EQ(result.new_transmissions, 4u);
  EXPECT_EQ(result.retransmissions, 0u);
  EXPECT_DOUBLE_EQ(result.u_etx(), 1.0);
  EXPECT_DOUBLE_EQ(result.tx_count_stddev(), 0.0);
}

TEST(RetransmissionAnalysis, DetectsCloseFramesAsRetransmissions) {
  // Packet at 0 ms retransmitted at 3 and 6 ms; next packet at 75 ms.
  const auto records = synthetic_records({0, 3, 6, 75});
  const auto result = RetransmissionAnalysis{}.analyze(records);
  EXPECT_EQ(result.new_transmissions, 2u);
  EXPECT_EQ(result.retransmissions, 2u);
  ASSERT_EQ(result.tx_counts.size(), 2u);
  EXPECT_EQ(result.tx_counts[0], 3);
  EXPECT_EQ(result.tx_counts[1], 1);
  EXPECT_DOUBLE_EQ(result.u_etx(), 2.0);
}

TEST(RetransmissionAnalysis, WindowBoundaryIsExclusive) {
  const auto records = synthetic_records({0, 10, 25});
  const auto result = RetransmissionAnalysis{}.analyze(records);
  // Exactly 10 ms apart: not within the window.
  EXPECT_EQ(result.retransmissions, 0u);
}

TEST(RetransmissionAnalysis, EmptyInput) {
  const auto result = RetransmissionAnalysis{}.analyze({});
  EXPECT_EQ(result.new_transmissions, 0u);
  EXPECT_DOUBLE_EQ(result.u_etx(), 0.0);
}

TEST(UnicastEtxEstimator, WrapsAnalysis) {
  UnicastEtxEstimator est;
  const auto records = synthetic_records({0, 2, 75, 150, 152, 154});
  const auto result = est.analyze(records);
  EXPECT_EQ(result.new_transmissions, 3u);
  EXPECT_EQ(result.retransmissions, 3u);
  EXPECT_DOUBLE_EQ(result.u_etx(), 2.0);
}

class UEtxParamSweep : public ::testing::TestWithParam<double> {};

TEST_P(UEtxParamSweep, PredictionIsFiniteAndAboveOne) {
  const double p = GetParam();
  const double u = predicted_u_etx(p, 3);
  EXPECT_GE(u, 1.0);
  EXPECT_LT(u, 1000.0);
}

INSTANTIATE_TEST_SUITE_P(PberrGrid, UEtxParamSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4,
                                           0.6, 0.9));

}  // namespace
}  // namespace efd::core


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/appliance.cpp" "src/grid/CMakeFiles/efd_grid.dir/appliance.cpp.o" "gcc" "src/grid/CMakeFiles/efd_grid.dir/appliance.cpp.o.d"
  "/root/repo/src/grid/power_grid.cpp" "src/grid/CMakeFiles/efd_grid.dir/power_grid.cpp.o" "gcc" "src/grid/CMakeFiles/efd_grid.dir/power_grid.cpp.o.d"
  "/root/repo/src/grid/schedule.cpp" "src/grid/CMakeFiles/efd_grid.dir/schedule.cpp.o" "gcc" "src/grid/CMakeFiles/efd_grid.dir/schedule.cpp.o.d"
  "/root/repo/src/grid/value_noise.cpp" "src/grid/CMakeFiles/efd_grid.dir/value_noise.cpp.o" "gcc" "src/grid/CMakeFiles/efd_grid.dir/value_noise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/efd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libefd_grid.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/efd_grid.dir/appliance.cpp.o"
  "CMakeFiles/efd_grid.dir/appliance.cpp.o.d"
  "CMakeFiles/efd_grid.dir/power_grid.cpp.o"
  "CMakeFiles/efd_grid.dir/power_grid.cpp.o.d"
  "CMakeFiles/efd_grid.dir/schedule.cpp.o"
  "CMakeFiles/efd_grid.dir/schedule.cpp.o.d"
  "CMakeFiles/efd_grid.dir/value_noise.cpp.o"
  "CMakeFiles/efd_grid.dir/value_noise.cpp.o.d"
  "libefd_grid.a"
  "libefd_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efd_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

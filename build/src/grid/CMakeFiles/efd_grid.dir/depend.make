# Empty dependencies file for efd_grid.
# This may be replaced when dependencies are built.

src/core/CMakeFiles/efd_core.dir/classifier.cpp.o: \
 /root/repo/src/core/classifier.cpp /usr/include/stdc-predef.h \
 /root/repo/src/sim/../../src/core/classifier.hpp

file(REMOVE_RECURSE
  "CMakeFiles/efd_core.dir/capacity.cpp.o"
  "CMakeFiles/efd_core.dir/capacity.cpp.o.d"
  "CMakeFiles/efd_core.dir/classifier.cpp.o"
  "CMakeFiles/efd_core.dir/classifier.cpp.o.d"
  "CMakeFiles/efd_core.dir/etx.cpp.o"
  "CMakeFiles/efd_core.dir/etx.cpp.o.d"
  "CMakeFiles/efd_core.dir/guidelines.cpp.o"
  "CMakeFiles/efd_core.dir/guidelines.cpp.o.d"
  "CMakeFiles/efd_core.dir/interference.cpp.o"
  "CMakeFiles/efd_core.dir/interference.cpp.o.d"
  "CMakeFiles/efd_core.dir/probing.cpp.o"
  "CMakeFiles/efd_core.dir/probing.cpp.o.d"
  "CMakeFiles/efd_core.dir/sampler.cpp.o"
  "CMakeFiles/efd_core.dir/sampler.cpp.o.d"
  "CMakeFiles/efd_core.dir/sof_capture.cpp.o"
  "CMakeFiles/efd_core.dir/sof_capture.cpp.o.d"
  "CMakeFiles/efd_core.dir/trace_io.cpp.o"
  "CMakeFiles/efd_core.dir/trace_io.cpp.o.d"
  "libefd_core.a"
  "libefd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capacity.cpp" "src/core/CMakeFiles/efd_core.dir/capacity.cpp.o" "gcc" "src/core/CMakeFiles/efd_core.dir/capacity.cpp.o.d"
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/efd_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/efd_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/etx.cpp" "src/core/CMakeFiles/efd_core.dir/etx.cpp.o" "gcc" "src/core/CMakeFiles/efd_core.dir/etx.cpp.o.d"
  "/root/repo/src/core/guidelines.cpp" "src/core/CMakeFiles/efd_core.dir/guidelines.cpp.o" "gcc" "src/core/CMakeFiles/efd_core.dir/guidelines.cpp.o.d"
  "/root/repo/src/core/interference.cpp" "src/core/CMakeFiles/efd_core.dir/interference.cpp.o" "gcc" "src/core/CMakeFiles/efd_core.dir/interference.cpp.o.d"
  "/root/repo/src/core/probing.cpp" "src/core/CMakeFiles/efd_core.dir/probing.cpp.o" "gcc" "src/core/CMakeFiles/efd_core.dir/probing.cpp.o.d"
  "/root/repo/src/core/sampler.cpp" "src/core/CMakeFiles/efd_core.dir/sampler.cpp.o" "gcc" "src/core/CMakeFiles/efd_core.dir/sampler.cpp.o.d"
  "/root/repo/src/core/sof_capture.cpp" "src/core/CMakeFiles/efd_core.dir/sof_capture.cpp.o" "gcc" "src/core/CMakeFiles/efd_core.dir/sof_capture.cpp.o.d"
  "/root/repo/src/core/trace_io.cpp" "src/core/CMakeFiles/efd_core.dir/trace_io.cpp.o" "gcc" "src/core/CMakeFiles/efd_core.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/efd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/efd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/plc/CMakeFiles/efd_plc.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/efd_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/efd_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

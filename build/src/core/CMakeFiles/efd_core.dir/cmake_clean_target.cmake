file(REMOVE_RECURSE
  "libefd_core.a"
)

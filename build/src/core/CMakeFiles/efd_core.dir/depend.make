# Empty dependencies file for efd_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libefd_testbed.a"
)

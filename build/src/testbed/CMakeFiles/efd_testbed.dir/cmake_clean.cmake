file(REMOVE_RECURSE
  "CMakeFiles/efd_testbed.dir/experiment.cpp.o"
  "CMakeFiles/efd_testbed.dir/experiment.cpp.o.d"
  "CMakeFiles/efd_testbed.dir/testbed.cpp.o"
  "CMakeFiles/efd_testbed.dir/testbed.cpp.o.d"
  "libefd_testbed.a"
  "libefd_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efd_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for efd_testbed.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for efd_testbed.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libefd_hybrid.a"
)

# Empty dependencies file for efd_hybrid.
# This may be replaced when dependencies are built.

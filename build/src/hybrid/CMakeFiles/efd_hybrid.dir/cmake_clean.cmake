file(REMOVE_RECURSE
  "CMakeFiles/efd_hybrid.dir/device.cpp.o"
  "CMakeFiles/efd_hybrid.dir/device.cpp.o.d"
  "CMakeFiles/efd_hybrid.dir/link_metrics.cpp.o"
  "CMakeFiles/efd_hybrid.dir/link_metrics.cpp.o.d"
  "CMakeFiles/efd_hybrid.dir/reorder.cpp.o"
  "CMakeFiles/efd_hybrid.dir/reorder.cpp.o.d"
  "CMakeFiles/efd_hybrid.dir/routing.cpp.o"
  "CMakeFiles/efd_hybrid.dir/routing.cpp.o.d"
  "CMakeFiles/efd_hybrid.dir/scheduler.cpp.o"
  "CMakeFiles/efd_hybrid.dir/scheduler.cpp.o.d"
  "libefd_hybrid.a"
  "libefd_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efd_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

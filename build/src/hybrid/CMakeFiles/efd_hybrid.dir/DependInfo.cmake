
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hybrid/device.cpp" "src/hybrid/CMakeFiles/efd_hybrid.dir/device.cpp.o" "gcc" "src/hybrid/CMakeFiles/efd_hybrid.dir/device.cpp.o.d"
  "/root/repo/src/hybrid/link_metrics.cpp" "src/hybrid/CMakeFiles/efd_hybrid.dir/link_metrics.cpp.o" "gcc" "src/hybrid/CMakeFiles/efd_hybrid.dir/link_metrics.cpp.o.d"
  "/root/repo/src/hybrid/reorder.cpp" "src/hybrid/CMakeFiles/efd_hybrid.dir/reorder.cpp.o" "gcc" "src/hybrid/CMakeFiles/efd_hybrid.dir/reorder.cpp.o.d"
  "/root/repo/src/hybrid/routing.cpp" "src/hybrid/CMakeFiles/efd_hybrid.dir/routing.cpp.o" "gcc" "src/hybrid/CMakeFiles/efd_hybrid.dir/routing.cpp.o.d"
  "/root/repo/src/hybrid/scheduler.cpp" "src/hybrid/CMakeFiles/efd_hybrid.dir/scheduler.cpp.o" "gcc" "src/hybrid/CMakeFiles/efd_hybrid.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/efd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/efd_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/efd_sim.dir/rng.cpp.o"
  "CMakeFiles/efd_sim.dir/rng.cpp.o.d"
  "CMakeFiles/efd_sim.dir/simulator.cpp.o"
  "CMakeFiles/efd_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/efd_sim.dir/stats.cpp.o"
  "CMakeFiles/efd_sim.dir/stats.cpp.o.d"
  "CMakeFiles/efd_sim.dir/time.cpp.o"
  "CMakeFiles/efd_sim.dir/time.cpp.o.d"
  "libefd_sim.a"
  "libefd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

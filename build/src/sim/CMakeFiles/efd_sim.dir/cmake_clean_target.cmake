file(REMOVE_RECURSE
  "libefd_sim.a"
)

# Empty compiler generated dependencies file for efd_sim.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for efd_wifi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libefd_wifi.a"
)

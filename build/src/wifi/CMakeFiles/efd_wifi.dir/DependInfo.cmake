
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wifi/channel.cpp" "src/wifi/CMakeFiles/efd_wifi.dir/channel.cpp.o" "gcc" "src/wifi/CMakeFiles/efd_wifi.dir/channel.cpp.o.d"
  "/root/repo/src/wifi/mac.cpp" "src/wifi/CMakeFiles/efd_wifi.dir/mac.cpp.o" "gcc" "src/wifi/CMakeFiles/efd_wifi.dir/mac.cpp.o.d"
  "/root/repo/src/wifi/mcs.cpp" "src/wifi/CMakeFiles/efd_wifi.dir/mcs.cpp.o" "gcc" "src/wifi/CMakeFiles/efd_wifi.dir/mcs.cpp.o.d"
  "/root/repo/src/wifi/network.cpp" "src/wifi/CMakeFiles/efd_wifi.dir/network.cpp.o" "gcc" "src/wifi/CMakeFiles/efd_wifi.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/efd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/efd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/efd_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

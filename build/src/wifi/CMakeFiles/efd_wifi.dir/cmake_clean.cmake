file(REMOVE_RECURSE
  "CMakeFiles/efd_wifi.dir/channel.cpp.o"
  "CMakeFiles/efd_wifi.dir/channel.cpp.o.d"
  "CMakeFiles/efd_wifi.dir/mac.cpp.o"
  "CMakeFiles/efd_wifi.dir/mac.cpp.o.d"
  "CMakeFiles/efd_wifi.dir/mcs.cpp.o"
  "CMakeFiles/efd_wifi.dir/mcs.cpp.o.d"
  "CMakeFiles/efd_wifi.dir/network.cpp.o"
  "CMakeFiles/efd_wifi.dir/network.cpp.o.d"
  "libefd_wifi.a"
  "libefd_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efd_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

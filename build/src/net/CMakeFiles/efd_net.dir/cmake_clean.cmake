file(REMOVE_RECURSE
  "CMakeFiles/efd_net.dir/meters.cpp.o"
  "CMakeFiles/efd_net.dir/meters.cpp.o.d"
  "CMakeFiles/efd_net.dir/sources.cpp.o"
  "CMakeFiles/efd_net.dir/sources.cpp.o.d"
  "libefd_net.a"
  "libefd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

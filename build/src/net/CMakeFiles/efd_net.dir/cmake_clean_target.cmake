file(REMOVE_RECURSE
  "libefd_net.a"
)

# Empty dependencies file for efd_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/efd_plc.dir/channel.cpp.o"
  "CMakeFiles/efd_plc.dir/channel.cpp.o.d"
  "CMakeFiles/efd_plc.dir/channel_estimator.cpp.o"
  "CMakeFiles/efd_plc.dir/channel_estimator.cpp.o.d"
  "CMakeFiles/efd_plc.dir/mac.cpp.o"
  "CMakeFiles/efd_plc.dir/mac.cpp.o.d"
  "CMakeFiles/efd_plc.dir/medium.cpp.o"
  "CMakeFiles/efd_plc.dir/medium.cpp.o.d"
  "CMakeFiles/efd_plc.dir/modulation.cpp.o"
  "CMakeFiles/efd_plc.dir/modulation.cpp.o.d"
  "CMakeFiles/efd_plc.dir/network.cpp.o"
  "CMakeFiles/efd_plc.dir/network.cpp.o.d"
  "CMakeFiles/efd_plc.dir/phy.cpp.o"
  "CMakeFiles/efd_plc.dir/phy.cpp.o.d"
  "CMakeFiles/efd_plc.dir/station.cpp.o"
  "CMakeFiles/efd_plc.dir/station.cpp.o.d"
  "CMakeFiles/efd_plc.dir/tone_map.cpp.o"
  "CMakeFiles/efd_plc.dir/tone_map.cpp.o.d"
  "libefd_plc.a"
  "libefd_plc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efd_plc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libefd_plc.a"
)

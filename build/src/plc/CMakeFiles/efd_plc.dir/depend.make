# Empty dependencies file for efd_plc.
# This may be replaced when dependencies are built.

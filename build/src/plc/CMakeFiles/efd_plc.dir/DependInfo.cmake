
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plc/channel.cpp" "src/plc/CMakeFiles/efd_plc.dir/channel.cpp.o" "gcc" "src/plc/CMakeFiles/efd_plc.dir/channel.cpp.o.d"
  "/root/repo/src/plc/channel_estimator.cpp" "src/plc/CMakeFiles/efd_plc.dir/channel_estimator.cpp.o" "gcc" "src/plc/CMakeFiles/efd_plc.dir/channel_estimator.cpp.o.d"
  "/root/repo/src/plc/mac.cpp" "src/plc/CMakeFiles/efd_plc.dir/mac.cpp.o" "gcc" "src/plc/CMakeFiles/efd_plc.dir/mac.cpp.o.d"
  "/root/repo/src/plc/medium.cpp" "src/plc/CMakeFiles/efd_plc.dir/medium.cpp.o" "gcc" "src/plc/CMakeFiles/efd_plc.dir/medium.cpp.o.d"
  "/root/repo/src/plc/modulation.cpp" "src/plc/CMakeFiles/efd_plc.dir/modulation.cpp.o" "gcc" "src/plc/CMakeFiles/efd_plc.dir/modulation.cpp.o.d"
  "/root/repo/src/plc/network.cpp" "src/plc/CMakeFiles/efd_plc.dir/network.cpp.o" "gcc" "src/plc/CMakeFiles/efd_plc.dir/network.cpp.o.d"
  "/root/repo/src/plc/phy.cpp" "src/plc/CMakeFiles/efd_plc.dir/phy.cpp.o" "gcc" "src/plc/CMakeFiles/efd_plc.dir/phy.cpp.o.d"
  "/root/repo/src/plc/station.cpp" "src/plc/CMakeFiles/efd_plc.dir/station.cpp.o" "gcc" "src/plc/CMakeFiles/efd_plc.dir/station.cpp.o.d"
  "/root/repo/src/plc/tone_map.cpp" "src/plc/CMakeFiles/efd_plc.dir/tone_map.cpp.o" "gcc" "src/plc/CMakeFiles/efd_plc.dir/tone_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/efd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/efd_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/efd_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

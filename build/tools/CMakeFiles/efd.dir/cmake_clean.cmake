file(REMOVE_RECURSE
  "CMakeFiles/efd.dir/efd_cli.cpp.o"
  "CMakeFiles/efd.dir/efd_cli.cpp.o.d"
  "efd"
  "efd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hybrid_routing_test.dir/hybrid_routing_test.cpp.o"
  "CMakeFiles/hybrid_routing_test.dir/hybrid_routing_test.cpp.o.d"
  "hybrid_routing_test"
  "hybrid_routing_test.pdb"
  "hybrid_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

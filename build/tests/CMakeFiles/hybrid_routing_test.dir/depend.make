# Empty dependencies file for hybrid_routing_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/grid_appliance_test.dir/grid_appliance_test.cpp.o"
  "CMakeFiles/grid_appliance_test.dir/grid_appliance_test.cpp.o.d"
  "grid_appliance_test"
  "grid_appliance_test.pdb"
  "grid_appliance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_appliance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

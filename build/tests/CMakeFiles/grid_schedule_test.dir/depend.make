# Empty dependencies file for grid_schedule_test.
# This may be replaced when dependencies are built.

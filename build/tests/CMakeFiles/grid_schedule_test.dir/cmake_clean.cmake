file(REMOVE_RECURSE
  "CMakeFiles/grid_schedule_test.dir/grid_schedule_test.cpp.o"
  "CMakeFiles/grid_schedule_test.dir/grid_schedule_test.cpp.o.d"
  "grid_schedule_test"
  "grid_schedule_test.pdb"
  "grid_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_time_test.cpp" "tests/CMakeFiles/sim_time_test.dir/sim_time_test.cpp.o" "gcc" "tests/CMakeFiles/sim_time_test.dir/sim_time_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/efd_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/efd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/efd_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/plc/CMakeFiles/efd_plc.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/efd_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/efd_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/efd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/efd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

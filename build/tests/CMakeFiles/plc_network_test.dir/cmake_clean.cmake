file(REMOVE_RECURSE
  "CMakeFiles/plc_network_test.dir/plc_network_test.cpp.o"
  "CMakeFiles/plc_network_test.dir/plc_network_test.cpp.o.d"
  "plc_network_test"
  "plc_network_test.pdb"
  "plc_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

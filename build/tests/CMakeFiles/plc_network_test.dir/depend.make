# Empty dependencies file for plc_network_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for grid_power_grid_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/plc_tone_map_test.dir/plc_tone_map_test.cpp.o"
  "CMakeFiles/plc_tone_map_test.dir/plc_tone_map_test.cpp.o.d"
  "plc_tone_map_test"
  "plc_tone_map_test.pdb"
  "plc_tone_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_tone_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for plc_tone_map_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/plc_mac_test.dir/plc_mac_test.cpp.o"
  "CMakeFiles/plc_mac_test.dir/plc_mac_test.cpp.o.d"
  "plc_mac_test"
  "plc_mac_test.pdb"
  "plc_mac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_mac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for plc_mac_test.
# This may be replaced when dependencies are built.

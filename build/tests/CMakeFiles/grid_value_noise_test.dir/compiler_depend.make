# Empty compiler generated dependencies file for grid_value_noise_test.
# This may be replaced when dependencies are built.

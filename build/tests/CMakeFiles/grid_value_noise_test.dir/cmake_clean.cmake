file(REMOVE_RECURSE
  "CMakeFiles/grid_value_noise_test.dir/grid_value_noise_test.cpp.o"
  "CMakeFiles/grid_value_noise_test.dir/grid_value_noise_test.cpp.o.d"
  "grid_value_noise_test"
  "grid_value_noise_test.pdb"
  "grid_value_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_value_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/plc_estimator_test.dir/plc_estimator_test.cpp.o"
  "CMakeFiles/plc_estimator_test.dir/plc_estimator_test.cpp.o.d"
  "plc_estimator_test"
  "plc_estimator_test.pdb"
  "plc_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

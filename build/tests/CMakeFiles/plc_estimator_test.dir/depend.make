# Empty dependencies file for plc_estimator_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/plc_modulation_test.dir/plc_modulation_test.cpp.o"
  "CMakeFiles/plc_modulation_test.dir/plc_modulation_test.cpp.o.d"
  "plc_modulation_test"
  "plc_modulation_test.pdb"
  "plc_modulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_modulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

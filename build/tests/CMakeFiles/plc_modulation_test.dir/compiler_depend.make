# Empty compiler generated dependencies file for plc_modulation_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/plc_channel_test.dir/plc_channel_test.cpp.o"
  "CMakeFiles/plc_channel_test.dir/plc_channel_test.cpp.o.d"
  "plc_channel_test"
  "plc_channel_test.pdb"
  "plc_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

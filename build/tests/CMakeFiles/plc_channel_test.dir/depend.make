# Empty dependencies file for plc_channel_test.
# This may be replaced when dependencies are built.

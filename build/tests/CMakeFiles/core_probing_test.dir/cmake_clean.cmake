file(REMOVE_RECURSE
  "CMakeFiles/core_probing_test.dir/core_probing_test.cpp.o"
  "CMakeFiles/core_probing_test.dir/core_probing_test.cpp.o.d"
  "core_probing_test"
  "core_probing_test.pdb"
  "core_probing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_probing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for core_etx_test.
# This may be replaced when dependencies are built.

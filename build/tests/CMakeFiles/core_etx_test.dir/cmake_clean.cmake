file(REMOVE_RECURSE
  "CMakeFiles/core_etx_test.dir/core_etx_test.cpp.o"
  "CMakeFiles/core_etx_test.dir/core_etx_test.cpp.o.d"
  "core_etx_test"
  "core_etx_test.pdb"
  "core_etx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_etx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

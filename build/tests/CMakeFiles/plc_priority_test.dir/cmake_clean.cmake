file(REMOVE_RECURSE
  "CMakeFiles/plc_priority_test.dir/plc_priority_test.cpp.o"
  "CMakeFiles/plc_priority_test.dir/plc_priority_test.cpp.o.d"
  "plc_priority_test"
  "plc_priority_test.pdb"
  "plc_priority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

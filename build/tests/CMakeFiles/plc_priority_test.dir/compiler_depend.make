# Empty compiler generated dependencies file for plc_priority_test.
# This may be replaced when dependencies are built.

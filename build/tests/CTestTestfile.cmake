# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sim_time_test[1]_include.cmake")
include("/root/repo/build/tests/sim_simulator_test[1]_include.cmake")
include("/root/repo/build/tests/sim_rng_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stats_test[1]_include.cmake")
include("/root/repo/build/tests/grid_schedule_test[1]_include.cmake")
include("/root/repo/build/tests/grid_value_noise_test[1]_include.cmake")
include("/root/repo/build/tests/grid_appliance_test[1]_include.cmake")
include("/root/repo/build/tests/grid_power_grid_test[1]_include.cmake")
include("/root/repo/build/tests/plc_modulation_test[1]_include.cmake")
include("/root/repo/build/tests/plc_tone_map_test[1]_include.cmake")
include("/root/repo/build/tests/plc_channel_test[1]_include.cmake")
include("/root/repo/build/tests/plc_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/plc_mac_test[1]_include.cmake")
include("/root/repo/build/tests/plc_priority_test[1]_include.cmake")
include("/root/repo/build/tests/plc_network_test[1]_include.cmake")
include("/root/repo/build/tests/wifi_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_routing_test[1]_include.cmake")
include("/root/repo/build/tests/core_capacity_test[1]_include.cmake")
include("/root/repo/build/tests/core_etx_test[1]_include.cmake")
include("/root/repo/build/tests/core_interference_test[1]_include.cmake")
include("/root/repo/build/tests/core_trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/core_probing_test[1]_include.cmake")
include("/root/repo/build/tests/core_sampler_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_uetx.dir/bench_fig22_uetx.cpp.o"
  "CMakeFiles/bench_fig22_uetx.dir/bench_fig22_uetx.cpp.o.d"
  "bench_fig22_uetx"
  "bench_fig22_uetx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_uetx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig15_ble_fit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_ble_fit.dir/bench_fig15_ble_fit.cpp.o"
  "CMakeFiles/bench_fig15_ble_fit.dir/bench_fig15_ble_fit.cpp.o.d"
  "bench_fig15_ble_fit"
  "bench_fig15_ble_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_ble_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

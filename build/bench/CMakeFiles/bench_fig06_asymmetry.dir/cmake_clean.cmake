file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_asymmetry.dir/bench_fig06_asymmetry.cpp.o"
  "CMakeFiles/bench_fig06_asymmetry.dir/bench_fig06_asymmetry.cpp.o.d"
  "bench_fig06_asymmetry"
  "bench_fig06_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

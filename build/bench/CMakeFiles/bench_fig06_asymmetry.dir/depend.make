# Empty dependencies file for bench_fig06_asymmetry.
# This may be replaced when dependencies are built.

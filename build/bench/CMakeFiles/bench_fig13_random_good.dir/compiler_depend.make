# Empty compiler generated dependencies file for bench_fig13_random_good.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_random_good.dir/bench_fig13_random_good.cpp.o"
  "CMakeFiles/bench_fig13_random_good.dir/bench_fig13_random_good.cpp.o.d"
  "bench_fig13_random_good"
  "bench_fig13_random_good.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_random_good.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

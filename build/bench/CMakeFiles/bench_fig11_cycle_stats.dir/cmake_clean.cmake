file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cycle_stats.dir/bench_fig11_cycle_stats.cpp.o"
  "CMakeFiles/bench_fig11_cycle_stats.dir/bench_fig11_cycle_stats.cpp.o.d"
  "bench_fig11_cycle_stats"
  "bench_fig11_cycle_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cycle_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

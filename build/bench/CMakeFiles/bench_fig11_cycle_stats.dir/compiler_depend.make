# Empty compiler generated dependencies file for bench_fig11_cycle_stats.
# This may be replaced when dependencies are built.

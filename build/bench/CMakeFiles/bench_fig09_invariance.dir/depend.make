# Empty dependencies file for bench_fig09_invariance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_invariance.dir/bench_fig09_invariance.cpp.o"
  "CMakeFiles/bench_fig09_invariance.dir/bench_fig09_invariance.cpp.o.d"
  "bench_fig09_invariance"
  "bench_fig09_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

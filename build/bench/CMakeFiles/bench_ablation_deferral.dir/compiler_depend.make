# Empty compiler generated dependencies file for bench_ablation_deferral.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_deferral.dir/bench_ablation_deferral.cpp.o"
  "CMakeFiles/bench_ablation_deferral.dir/bench_ablation_deferral.cpp.o.d"
  "bench_ablation_deferral"
  "bench_ablation_deferral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_deferral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

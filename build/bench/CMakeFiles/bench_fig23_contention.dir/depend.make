# Empty dependencies file for bench_fig23_contention.
# This may be replaced when dependencies are built.

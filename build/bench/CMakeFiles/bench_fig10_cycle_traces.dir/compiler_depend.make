# Empty compiler generated dependencies file for bench_fig10_cycle_traces.
# This may be replaced when dependencies are built.

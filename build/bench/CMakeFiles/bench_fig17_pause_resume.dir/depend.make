# Empty dependencies file for bench_fig17_pause_resume.
# This may be replaced when dependencies are built.

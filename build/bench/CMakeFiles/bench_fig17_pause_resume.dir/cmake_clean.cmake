file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_pause_resume.dir/bench_fig17_pause_resume.cpp.o"
  "CMakeFiles/bench_fig17_pause_resume.dir/bench_fig17_pause_resume.cpp.o.d"
  "bench_fig17_pause_resume"
  "bench_fig17_pause_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_pause_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

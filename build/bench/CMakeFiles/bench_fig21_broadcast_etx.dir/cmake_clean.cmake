file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_broadcast_etx.dir/bench_fig21_broadcast_etx.cpp.o"
  "CMakeFiles/bench_fig21_broadcast_etx.dir/bench_fig21_broadcast_etx.cpp.o.d"
  "bench_fig21_broadcast_etx"
  "bench_fig21_broadcast_etx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_broadcast_etx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig21_broadcast_etx.
# This may be replaced when dependencies are built.

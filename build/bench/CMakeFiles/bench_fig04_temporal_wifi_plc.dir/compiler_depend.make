# Empty compiler generated dependencies file for bench_fig04_temporal_wifi_plc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_temporal_wifi_plc.dir/bench_fig04_temporal_wifi_plc.cpp.o"
  "CMakeFiles/bench_fig04_temporal_wifi_plc.dir/bench_fig04_temporal_wifi_plc.cpp.o.d"
  "bench_fig04_temporal_wifi_plc"
  "bench_fig04_temporal_wifi_plc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_temporal_wifi_plc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

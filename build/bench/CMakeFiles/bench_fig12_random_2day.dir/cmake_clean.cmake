file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_random_2day.dir/bench_fig12_random_2day.cpp.o"
  "CMakeFiles/bench_fig12_random_2day.dir/bench_fig12_random_2day.cpp.o.d"
  "bench_fig12_random_2day"
  "bench_fig12_random_2day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_random_2day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig12_random_2day.
# This may be replaced when dependencies are built.

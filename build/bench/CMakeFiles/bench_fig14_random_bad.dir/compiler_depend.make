# Empty compiler generated dependencies file for bench_fig14_random_bad.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_random_bad.dir/bench_fig14_random_bad.cpp.o"
  "CMakeFiles/bench_fig14_random_bad.dir/bench_fig14_random_bad.cpp.o.d"
  "bench_fig14_random_bad"
  "bench_fig14_random_bad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_random_bad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

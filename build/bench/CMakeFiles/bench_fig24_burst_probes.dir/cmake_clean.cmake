file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_burst_probes.dir/bench_fig24_burst_probes.cpp.o"
  "CMakeFiles/bench_fig24_burst_probes.dir/bench_fig24_burst_probes.cpp.o.d"
  "bench_fig24_burst_probes"
  "bench_fig24_burst_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_burst_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig24_burst_probes.
# This may be replaced when dependencies are built.

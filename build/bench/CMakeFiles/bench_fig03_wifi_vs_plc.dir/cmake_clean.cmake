file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_wifi_vs_plc.dir/bench_fig03_wifi_vs_plc.cpp.o"
  "CMakeFiles/bench_fig03_wifi_vs_plc.dir/bench_fig03_wifi_vs_plc.cpp.o.d"
  "bench_fig03_wifi_vs_plc"
  "bench_fig03_wifi_vs_plc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_wifi_vs_plc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig03_wifi_vs_plc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/adaptive_probing.dir/adaptive_probing.cpp.o"
  "CMakeFiles/adaptive_probing.dir/adaptive_probing.cpp.o.d"
  "adaptive_probing"
  "adaptive_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

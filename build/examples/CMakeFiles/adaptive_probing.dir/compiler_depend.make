# Empty compiler generated dependencies file for adaptive_probing.
# This may be replaced when dependencies are built.

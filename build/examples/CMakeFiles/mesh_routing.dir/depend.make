# Empty dependencies file for mesh_routing.
# This may be replaced when dependencies are built.

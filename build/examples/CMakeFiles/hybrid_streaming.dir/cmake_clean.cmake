file(REMOVE_RECURSE
  "CMakeFiles/hybrid_streaming.dir/hybrid_streaming.cpp.o"
  "CMakeFiles/hybrid_streaming.dir/hybrid_streaming.cpp.o.d"
  "hybrid_streaming"
  "hybrid_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hybrid_streaming.
# This may be replaced when dependencies are built.

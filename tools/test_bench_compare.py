#!/usr/bin/env python3
"""Unit tests for bench_compare.py, run from ctest (tier1 label).

Each case shells out to the real script — the exit-status contract
(0 pass / 1 budget failure / 2 usage-or-structure error) is exactly what CI
consumes, so that is the surface under test.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def doc(metrics, wall_clock_s=2.0):
    return {"wall_clock_s": wall_clock_s, "metrics": metrics}


def metric(name, value):
    return {"name": name, "value": value}


class CompareTestBase(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, name, payload):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def run_compare(self, cur, base, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, cur, base, *extra],
            capture_output=True, text=True, check=False)


class BenchCompareTest(CompareTestBase):
    def test_identical_docs_pass(self):
        d = doc([metric("median_mbps", 87.5),
                 metric("sim_events_per_sec", 1.0e6)])
        r = self.run_compare(self.write("cur.json", d),
                             self.write("base.json", d))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_shape_drift_fails(self):
        base = doc([metric("median_mbps", 87.5)])
        cur = doc([metric("median_mbps", 87.6)])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 1)
        self.assertIn("drifted", r.stderr)

    def test_missing_shape_metric_fails(self):
        base = doc([metric("median_mbps", 87.5)])
        cur = doc([])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing", r.stderr)

    def test_metrics_as_dict_is_structure_error(self):
        # A bench writer regression turning the array into an object must be
        # a clear exit-2 diagnosis, not a TypeError traceback.
        base = doc([metric("median_mbps", 87.5)])
        cur = dict(doc([]), metrics={"median_mbps": 87.5})
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 2)
        self.assertIn("must be an array", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_valueless_metric_entry_is_skipped_not_crash(self):
        base = doc([metric("median_mbps", 87.5), {"name": "half_done"}])
        cur = doc([metric("median_mbps", 87.5), {"not_a_name": 1}])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("skipped", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_valueless_entry_in_current_still_counts_as_missing(self):
        base = doc([metric("median_mbps", 87.5)])
        cur = doc([{"name": "median_mbps"}])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing", r.stderr)

    def test_non_numeric_perf_value_is_not_comparable(self):
        base = doc([metric("sim_events_per_sec", "fast")], wall_clock_s="n/a")
        cur = doc([metric("sim_events_per_sec", 1.0e6)])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("no comparable baseline value", r.stdout)

    def test_missing_perf_key_is_not_comparable(self):
        # No sim_events_per_sec / wall_clock_s anywhere: perf silently waived.
        base = doc([metric("median_mbps", 87.5)], wall_clock_s=None)
        cur = doc([metric("median_mbps", 87.5)], wall_clock_s=None)
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_perf_regression_fails_and_skip_perf_waives_it(self):
        base = doc([metric("sim_events_per_sec", 1.0e6)], wall_clock_s=1.0)
        cur = doc([metric("sim_events_per_sec", 0.5e6)], wall_clock_s=2.0)
        cur_p = self.write("cur.json", cur)
        base_p = self.write("base.json", base)
        self.assertEqual(self.run_compare(cur_p, base_p).returncode, 1)
        self.assertEqual(
            self.run_compare(cur_p, base_p, "--skip-perf").returncode, 0)

    def test_perf_improvement_passes(self):
        base = doc([metric("sim_events_per_sec", 1.0e6)], wall_clock_s=2.0)
        cur = doc([metric("sim_events_per_sec", 2.0e6)], wall_clock_s=1.0)
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_machine_metric_mismatch_is_not_shape_drift(self):
        # carrier_math_impl records which SIMD dispatch entry ran; a forced-
        # scalar leg must still compare clean against an avx2-made baseline.
        base = doc([metric("median_mbps", 87.5), metric("carrier_math_impl", 1)])
        cur = doc([metric("median_mbps", 87.5), metric("carrier_math_impl", 0)])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_shard_count_mismatch_is_not_shape_drift(self):
        # n_shards records how the campus bench was launched; an
        # EFD_SHARDS=1 run must compare clean against a 4-shard baseline —
        # the digest metrics are the actual gate.
        base = doc([metric("digest6_1000", 696197), metric("n_shards", 4)])
        cur = doc([metric("digest6_1000", 696197), metric("n_shards", 1)])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_load_balance_drift_warns_but_passes(self):
        base = doc([metric("digest6_1000", 696197),
                    metric("shard_load_balance", 1.1)])
        cur = doc([metric("digest6_1000", 696197),
                   metric("shard_load_balance", 3.7)])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("warn", r.stdout)
        self.assertIn("shard_load_balance", r.stdout)

    def test_fault_and_mailbox_metrics_warn_but_pass(self):
        # Chaos-profile metrics (PR 9): a changed fault plan or a different
        # shard interleaving shifts these, which warns without failing.
        base = doc([metric("digest6_1000", 696197),
                    metric("fault_events", 0),
                    metric("mailbox_peak_occupancy", 12)])
        cur = doc([metric("digest6_1000", 696197),
                   metric("fault_events", 14),
                   metric("mailbox_peak_occupancy", 57)])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("warn", r.stdout)
        self.assertIn("fault_events", r.stdout)
        self.assertIn("mailbox_peak_occupancy", r.stdout)

    def test_campus_digest_drift_still_fails(self):
        # The warn-only carve-out must not leak: the digest metrics of the
        # campus bench stay hard shape gates.
        base = doc([metric("digest6_1000", 696197),
                    metric("shard_load_balance", 1.1)])
        cur = doc([metric("digest6_1000", 123456),
                   metric("shard_load_balance", 1.1)])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 1)
        self.assertIn("digest6_1000", r.stderr)

    def test_unreadable_file_is_usage_error(self):
        base = self.write("base.json", doc([]))
        r = self.run_compare(os.path.join(self.tmp.name, "absent.json"), base)
        self.assertEqual(r.returncode, 2)

    def test_invalid_json_is_usage_error(self):
        base = self.write("base.json", doc([]))
        cur = self.write("cur.json", "{not json")
        r = self.run_compare(cur, base)
        self.assertEqual(r.returncode, 2)


def pnode(name, total_ns, *children):
    return {"name": name, "count": 1, "total_ns": total_ns,
            "self_ns": total_ns, "threads": [], "children": list(children)}


def with_profile(d, *phases):
    """Attach a metrics_snapshot.profile with the given (name, ns) phases."""
    total = sum(ns for _, ns in phases)
    bench = pnode("bench", total, *(pnode(n, ns) for n, ns in phases))
    d = dict(d)
    d["metrics_snapshot"] = {
        "profile": {"enabled": True, "threads": 1, "cpu_total_ns": total,
                    "dropped": 0, "root": pnode("(root)", total, bench)}}
    return d


class ProfilePhaseDiffTest(CompareTestBase):
    """The embedded-profile phase diff is advisory: warnings, never failures."""

    def test_shifted_phase_warns_but_passes(self):
        base = with_profile(doc([metric("median_mbps", 87.5)]),
                            ("phase.setup", 100_000_000),
                            ("phase.sweep", 1_000_000_000))
        cur = with_profile(doc([metric("median_mbps", 87.5)]),
                           ("phase.setup", 100_000_000),
                           ("phase.sweep", 3_000_000_000))  # 3x slower sweep
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("warn", r.stdout)
        self.assertIn("phase.sweep", r.stdout)

    def test_stable_phases_print_ok(self):
        d = with_profile(doc([metric("median_mbps", 87.5)]),
                         ("phase.setup", 100_000_000),
                         ("phase.sweep", 1_000_000_000))
        r = self.run_compare(self.write("cur.json", d),
                             self.write("base.json", d))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("profile phase.setup", r.stdout)
        self.assertIn("profile phase.sweep", r.stdout)

    def test_missing_and_new_phases_warn_but_pass(self):
        base = with_profile(doc([]), ("phase.old", 100_000_000))
        cur = with_profile(doc([]), ("phase.new", 100_000_000))
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("'phase.old' missing from current run", r.stdout)
        self.assertIn("'phase.new' absent from baseline", r.stdout)

    def test_profileless_baseline_is_silently_skipped(self):
        # Committed baselines predate the profiler; comparing against them
        # must neither warn nor fail.
        base = doc([metric("median_mbps", 87.5)])
        cur = with_profile(doc([metric("median_mbps", 87.5)]),
                           ("phase.sweep", 1_000_000_000))
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertNotIn("profile", r.stdout)

    def test_profile_rides_free_on_shape_failure(self):
        # The profile block must not mask or alter the shape verdict.
        base = with_profile(doc([metric("median_mbps", 87.5)]),
                            ("phase.sweep", 1_000_000_000))
        cur = with_profile(doc([metric("median_mbps", 99.9)]),
                           ("phase.sweep", 1_000_000_000))
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 1)
        self.assertIn("drifted", r.stderr)


def gbench(*entries):
    return {"context": {"num_cpus": 1}, "benchmarks": list(entries)}


def kbench(kernel, impl, n, cpu_time, **extra):
    return dict({"name": f"kernel/{kernel}/{impl}/{n}",
                 "run_type": "iteration", "cpu_time": cpu_time}, **extra)


class KernelSpeedupCompareTest(CompareTestBase):
    """google-benchmark mode: per-(kernel, n) speedup-over-scalar budgets."""

    def test_equal_speedups_pass(self):
        d = gbench(kbench("db_to_linear", "scalar", 917, 4000.0),
                   kbench("db_to_linear", "avx2", 917, 1000.0))
        r = self.run_compare(self.write("cur.json", d),
                             self.write("base.json", d))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("4.00x", r.stdout)

    def test_speedup_is_host_independent(self):
        # A 2x slower host with the same scalar/avx2 ratio is not a regression.
        base = gbench(kbench("db_to_linear", "scalar", 917, 4000.0),
                      kbench("db_to_linear", "avx2", 917, 1000.0))
        cur = gbench(kbench("db_to_linear", "scalar", 917, 8000.0),
                     kbench("db_to_linear", "avx2", 917, 2000.0))
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_speedup_regression_fails(self):
        base = gbench(kbench("robo_sum", "scalar", 917, 4000.0),
                      kbench("robo_sum", "avx2", 917, 1000.0))
        cur = gbench(kbench("robo_sum", "scalar", 917, 4000.0),
                     kbench("robo_sum", "avx2", 917, 2000.0))  # 4x -> 2x
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 1)
        self.assertIn("speedup dropped", r.stderr)

    def test_missing_kernel_entry_is_a_tripwire(self):
        base = gbench(kbench("robo_sum", "scalar", 917, 4000.0),
                      kbench("robo_sum", "avx2", 917, 1000.0))
        cur = gbench(kbench("robo_sum", "scalar", 917, 4000.0))
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing", r.stderr)

    def test_median_aggregates_win_over_repetitions(self):
        # Per-repetition entries drift; the _median aggregate is the signal.
        base = gbench(kbench("robo_sum", "scalar", 917, 4000.0),
                      kbench("robo_sum", "avx2", 917, 1000.0))
        cur = gbench(
            kbench("robo_sum", "scalar", 917, 4000.0),
            kbench("robo_sum", "avx2", 917, 9000.0),  # noisy repetition
            dict(kbench("robo_sum", "scalar", 917, 4000.0),
                 name="kernel/robo_sum/scalar/917_median", run_type="aggregate"),
            dict(kbench("robo_sum", "avx2", 917, 1050.0),
                 name="kernel/robo_sum/avx2/917_median", run_type="aggregate"))
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_mean_stddev_aggregates_are_ignored(self):
        d = gbench(
            kbench("db_to_linear", "scalar", 917, 4000.0),
            kbench("db_to_linear", "avx2", 917, 1000.0),
            dict(kbench("db_to_linear", "avx2", 917, 77.0),
                 name="kernel/db_to_linear/avx2/917_stddev",
                 run_type="aggregate"))
        r = self.run_compare(self.write("cur.json", d),
                             self.write("base.json", d))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_non_kernel_benchmarks_are_ignored(self):
        d = gbench(kbench("db_to_linear", "scalar", 917, 4000.0),
                   kbench("db_to_linear", "avx2", 917, 1000.0),
                   {"name": "BM_other/4", "run_type": "iteration",
                    "cpu_time": 5.0})
        r = self.run_compare(self.write("cur.json", d),
                             self.write("base.json", d))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_no_kernel_entries_in_baseline_is_structure_error(self):
        d = gbench({"name": "BM_other/4", "run_type": "iteration",
                    "cpu_time": 5.0})
        r = self.run_compare(self.write("cur.json", d),
                             self.write("base.json", d))
        self.assertEqual(r.returncode, 2)

    def test_format_mismatch_is_usage_error(self):
        base = gbench(kbench("db_to_linear", "scalar", 917, 4000.0))
        cur = doc([metric("median_mbps", 87.5)])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 2)
        self.assertIn("cannot compare", r.stderr)


if __name__ == "__main__":
    unittest.main()

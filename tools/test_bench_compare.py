#!/usr/bin/env python3
"""Unit tests for bench_compare.py, run from ctest (tier1 label).

Each case shells out to the real script — the exit-status contract
(0 pass / 1 budget failure / 2 usage-or-structure error) is exactly what CI
consumes, so that is the surface under test.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def doc(metrics, wall_clock_s=2.0):
    return {"wall_clock_s": wall_clock_s, "metrics": metrics}


def metric(name, value):
    return {"name": name, "value": value}


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, name, payload):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def run_compare(self, cur, base, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, cur, base, *extra],
            capture_output=True, text=True, check=False)

    def test_identical_docs_pass(self):
        d = doc([metric("median_mbps", 87.5),
                 metric("sim_events_per_sec", 1.0e6)])
        r = self.run_compare(self.write("cur.json", d),
                             self.write("base.json", d))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_shape_drift_fails(self):
        base = doc([metric("median_mbps", 87.5)])
        cur = doc([metric("median_mbps", 87.6)])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 1)
        self.assertIn("drifted", r.stderr)

    def test_missing_shape_metric_fails(self):
        base = doc([metric("median_mbps", 87.5)])
        cur = doc([])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing", r.stderr)

    def test_metrics_as_dict_is_structure_error(self):
        # A bench writer regression turning the array into an object must be
        # a clear exit-2 diagnosis, not a TypeError traceback.
        base = doc([metric("median_mbps", 87.5)])
        cur = dict(doc([]), metrics={"median_mbps": 87.5})
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 2)
        self.assertIn("must be an array", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_valueless_metric_entry_is_skipped_not_crash(self):
        base = doc([metric("median_mbps", 87.5), {"name": "half_done"}])
        cur = doc([metric("median_mbps", 87.5), {"not_a_name": 1}])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("skipped", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_valueless_entry_in_current_still_counts_as_missing(self):
        base = doc([metric("median_mbps", 87.5)])
        cur = doc([{"name": "median_mbps"}])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 1)
        self.assertIn("missing", r.stderr)

    def test_non_numeric_perf_value_is_not_comparable(self):
        base = doc([metric("sim_events_per_sec", "fast")], wall_clock_s="n/a")
        cur = doc([metric("sim_events_per_sec", 1.0e6)])
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("no comparable baseline value", r.stdout)

    def test_missing_perf_key_is_not_comparable(self):
        # No sim_events_per_sec / wall_clock_s anywhere: perf silently waived.
        base = doc([metric("median_mbps", 87.5)], wall_clock_s=None)
        cur = doc([metric("median_mbps", 87.5)], wall_clock_s=None)
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_perf_regression_fails_and_skip_perf_waives_it(self):
        base = doc([metric("sim_events_per_sec", 1.0e6)], wall_clock_s=1.0)
        cur = doc([metric("sim_events_per_sec", 0.5e6)], wall_clock_s=2.0)
        cur_p = self.write("cur.json", cur)
        base_p = self.write("base.json", base)
        self.assertEqual(self.run_compare(cur_p, base_p).returncode, 1)
        self.assertEqual(
            self.run_compare(cur_p, base_p, "--skip-perf").returncode, 0)

    def test_perf_improvement_passes(self):
        base = doc([metric("sim_events_per_sec", 1.0e6)], wall_clock_s=2.0)
        cur = doc([metric("sim_events_per_sec", 2.0e6)], wall_clock_s=1.0)
        r = self.run_compare(self.write("cur.json", cur),
                             self.write("base.json", base))
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_unreadable_file_is_usage_error(self):
        base = self.write("base.json", doc([]))
        r = self.run_compare(os.path.join(self.tmp.name, "absent.json"), base)
        self.assertEqual(r.returncode, 2)

    def test_invalid_json_is_usage_error(self):
        base = self.write("base.json", doc([]))
        cur = self.write("cur.json", "{not json")
        r = self.run_compare(cur, base)
        self.assertEqual(r.returncode, 2)


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env python3
"""Render the flamegraph tree embedded in a BENCH_*.json to readable text.

Every figure bench emits its efd::obs snapshot, and since the profiler
landed that snapshot carries a "profile" block: the folded call tree of the
run (one line per scope here, indented by depth, with inclusive time, share
of the root, self time and call count).

    ./tools/render_profile.py BENCH_fig03.json
    ./tools/render_profile.py BENCH_fig03.json --max-wall-delta 0.05

With --max-wall-delta the script also asserts the profiler accounted for
the whole run: |root_total - wall_clock| <= delta * wall_clock. CI's bench
smoke uses this as the "the attribution is trustworthy" gate.
"""

import argparse
import json
import sys


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:8.3f}s "
    if ns >= 1e6:
        return f"{ns / 1e6:8.3f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:8.3f}us"
    return f"{ns:8.0f}ns"


def render(node, root_total, depth=0, out=sys.stdout):
    share = 100.0 * node["total_ns"] / root_total if root_total > 0 else 0.0
    name = "  " * depth + node["name"]
    out.write(
        f"{name:<44} {fmt_ns(node['total_ns'])} {share:5.1f}%  "
        f"self {fmt_ns(node['self_ns'])}  x{node['count']}\n"
    )
    for child in node["children"]:
        render(child, root_total, depth + 1, out)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", help="a BENCH_*.json with an embedded profile")
    ap.add_argument(
        "--max-wall-delta",
        type=float,
        default=None,
        metavar="FRAC",
        help="fail unless |profile root - wall_clock_s| <= FRAC * wall_clock_s",
    )
    args = ap.parse_args()

    with open(args.bench_json) as f:
        doc = json.load(f)
    profile = doc.get("metrics_snapshot", {}).get("profile")
    if profile is None:
        print(f"{args.bench_json}: no profile block (compiled out or old run)")
        return 1 if args.max_wall_delta is not None else 0

    root = profile["root"]
    print(f"# {args.bench_json}: {profile['threads']} thread(s), "
          f"cpu {profile['cpu_total_ns'] / 1e9:.3f}s, "
          f"dropped {profile['dropped']}")
    render(root, root["total_ns"])

    if args.max_wall_delta is not None:
        wall_s = doc["wall_clock_s"]
        root_s = root["total_ns"] / 1e9
        delta = abs(root_s - wall_s) / wall_s if wall_s > 0 else float("inf")
        print(f"# root {root_s:.3f}s vs wall {wall_s:.3f}s "
              f"(delta {100 * delta:.2f}%, budget {100 * args.max_wall_delta:.0f}%)")
        if delta > args.max_wall_delta:
            print("# FAIL: profile root does not account for the run")
            return 1
        if profile["dropped"] > 0:
            print(f"# FAIL: {profile['dropped']} scopes dropped (pool/stack "
                  "exhausted) — the tree is incomplete")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

// efd — command-line front end to the Electri-Fi toolkit, in the spirit of
// the Open Powerline Toolkit the paper instruments its testbed with
// (int6krate / ampstat / the sniffer). Runs against the built-in Fig. 2
// testbed simulation.
//
//   efd survey [--night]              whole-floor link survey
//   efd rate <src> <dst>              int6krate-style capacity estimate
//   efd stat <src> <dst>              ampstat-style PBerr + U-ETX
//   efd trace <src> <dst> <seconds>   BLE trace at 50 ms, CSV to stdout
//   efd sniff <src> <dst> <seconds>   SoF capture under saturation, CSV
//   efd route <src> <dst>             min-ETT hybrid route
//   efd guidelines                    the paper's Table 3
//   efd topology [--outlets N] [--shards K] [--seed S]
//                                     campus grid as JSON (boards, shards,
//                                     boundary links), DESIGN.md §14
//   efd campus [--outlets N] [--shards K] [--seed S] [--ms D] [--storm SEED]
//                                     run a sharded campus (optionally under
//                                     a seeded fault-domain storm) and print
//                                     the deterministic digest report — the
//                                     CI chaos leg diffs this output between
//                                     shard counts, DESIGN.md §15
//   efd --proptest <seed> <n>         property-based scenario sweep
//
// A leading --metrics flag dumps the efd::obs metrics snapshot (counters,
// gauges, histograms accumulated by the command's simulation) as JSON to
// stderr after the command output, so CSV/stdout pipelines stay clean:
//   efd --metrics stat 0 5 2>metrics.json
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/capacity.hpp"
#include "src/core/etx.hpp"
#include "src/core/guidelines.hpp"
#include "src/core/sampler.hpp"
#include "src/core/sof_capture.hpp"
#include "src/core/trace_io.hpp"
#include "src/fault/fault.hpp"
#include "src/grid/campus.hpp"
#include "src/hybrid/routing.hpp"
#include "src/sim/sharded.hpp"
#include "src/obs/metrics.hpp"
#include "src/testbed/campus.hpp"
#include "src/testbed/experiment.hpp"
#include "src/testkit/proptest.hpp"

using namespace efd;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: efd [--metrics] <survey [--night] | rate S D | stat S D | "
               "trace S D SECS | sniff S D SECS | route S D | guidelines>\n"
               "       efd topology [--outlets N] [--shards K] [--seed S]   "
               "campus grid as JSON\n"
               "       efd campus [--outlets N] [--shards K] [--seed S] [--ms D] "
               "[--storm SEED]   sharded campus run, deterministic report\n"
               "       efd --proptest <seed> <n>   randomized scenario sweep "
               "(invariants + diff + determinism)\n"
               "stations: 0-18 (0-11 on network B1, 12-18 on B2)\n"
               "--metrics: dump the efd::obs snapshot as JSON to stderr\n");
  return 2;
}

struct World {
  sim::Simulator sim;
  testbed::Testbed tb;

  explicit World(bool night) : tb(sim, make_config()) {
    sim.run_until(night ? testbed::weekend_night() : testbed::weekday_afternoon());
  }

  static testbed::Testbed::Config make_config() {
    testbed::Testbed::Config cfg;
    cfg.with_hpav500 = false;
    return cfg;
  }

  bool valid(int s) const { return s >= 0 && s < testbed::Testbed::kStations; }

  double warmed_ble(int a, int b) {
    auto& est = tb.plc_network_of(b).estimator(b, a);
    core::LinkTraceSampler sampler(tb.plc_channel(), est, a, b, sim::Rng{1});
    (void)sampler.run(sim.now(), sim.now() + sim::seconds(3));
    return est.average_ble_mbps();
  }
};

int cmd_survey(bool night) {
  World w(night);
  core::BleCapacityEstimator cap;
  std::printf("%-8s %10s %12s %10s %10s\n", "link", "BLE Mb/s", "pred T",
              "cable m", "wifi Mb/s");
  for (const auto& [a, b] : w.tb.plc_links()) {
    double ble = 0.0;
    if (w.tb.plc_channel().mean_snr_db(a, b, 0, w.sim.now()) > 3.0) {
      ble = w.warmed_ble(a, b);
    }
    std::printf("%2d->%-5d %10.1f %12.1f %10.0f %10.1f\n", a, b, ble,
                cap.throughput_from_ble(ble),
                w.tb.plc_channel().cable_distance(a, b),
                w.tb.wifi().mcs_capacity_mbps(a, b, w.sim.now()));
  }
  return 0;
}

int cmd_rate(int a, int b) {
  World w(false);
  const double ble = w.warmed_ble(a, b);
  core::BleCapacityEstimator cap;
  std::printf("link %d->%d: average BLE %.1f Mb/s, predicted UDP throughput "
              "%.1f Mb/s\n",
              a, b, ble, cap.throughput_from_ble(ble));
  auto& est = w.tb.plc_network_of(b).estimator(b, a);
  std::printf("per-slot BLE:");
  for (int s = 0; s < w.tb.plc_channel().phy().tone_map_slots; ++s) {
    std::printf(" %.1f", est.ble_mbps(s));
  }
  std::printf("\n");
  return 0;
}

int cmd_stat(int a, int b) {
  World w(false);
  (void)w.warmed_ble(a, b);
  auto& medium = w.tb.plc_network_of(a).medium();
  core::SofCapture capture(medium);
  capture.filter(a, b);
  net::ProbeSource::Config pcfg;
  pcfg.src = a;
  pcfg.dst = b;
  pcfg.interval = sim::milliseconds(75);
  pcfg.packet_bytes = 1500;
  net::ProbeSource probes(w.sim, w.tb.plc_station(a).mac(), pcfg);
  probes.run(w.sim.now(), w.sim.now() + sim::seconds(30));
  w.sim.run_until(w.sim.now() + sim::seconds(31));
  const auto result = core::UnicastEtxEstimator{}.analyze(capture.records());
  const double pberr = w.tb.plc_network_of(b).mm_pberr(a, b);
  std::printf("link %d->%d: PBerr %.4f, U-ETX %.2f (std %.2f), predicted "
              "U-ETX %.2f\n",
              a, b, pberr, result.u_etx(), result.tx_count_stddev(),
              core::predicted_u_etx(pberr, 3));
  return 0;
}

int cmd_trace(int a, int b, double seconds) {
  World w(false);
  auto& est = w.tb.plc_network_of(b).estimator(b, a);
  core::LinkTraceSampler sampler(w.tb.plc_channel(), est, a, b, sim::Rng{1});
  const auto trace =
      sampler.run(w.sim.now(), w.sim.now() + sim::seconds(seconds));
  core::write_ble_trace_csv(std::cout, trace);
  return 0;
}

int cmd_sniff(int a, int b, double seconds) {
  World w(false);
  (void)w.warmed_ble(a, b);
  auto& medium = w.tb.plc_network_of(a).medium();
  core::SofCapture capture(medium);
  capture.filter(a, b);
  (void)testbed::measure_plc_throughput(w.tb, a, b, sim::seconds(seconds));
  core::write_sof_records_csv(std::cout, capture.records());
  return 0;
}

int cmd_route(int a, int b) {
  World w(false);
  core::BleCapacityEstimator cap;
  hybrid::LinkMetricTable table;
  for (const auto& [s, d] : w.tb.plc_links()) {
    if (w.tb.plc_channel().mean_snr_db(s, d, 0, w.sim.now()) < 4.0) continue;
    const double ble = w.warmed_ble(s, d);
    table.update(s, d, hybrid::Medium::kPlc,
                 {cap.throughput_from_ble(ble), 0.0, w.sim.now()});
  }
  for (const auto& [s, d] : w.tb.all_pairs()) {
    const double mcs = w.tb.wifi().mcs_capacity_mbps(s, d, w.sim.now());
    if (mcs >= 1.0) {
      table.update(s, d, hybrid::Medium::kWifi, {0.75 * mcs, 0.0, w.sim.now()});
    }
  }
  hybrid::MeshRouter router(table);
  const auto path = router.route(a, b, w.sim.now());
  if (path.empty()) {
    std::printf("route %d -> %d: unreachable\n", a, b);
    return 1;
  }
  std::printf("route: %d", a);
  for (const auto& hop : path) {
    std::printf(" -[%s]-> %d", to_string(hop.medium).c_str(), hop.to);
  }
  std::printf("  (ETT %.2f ms)\n", router.path_ett_ms(path, w.sim.now()));
  return 0;
}

int cmd_guidelines() {
  for (const auto& g : core::guidelines()) {
    std::printf("%-22.*s %s (sec. %.*s)\n", static_cast<int>(g.policy.size()),
                g.policy.data(), std::string(g.guideline).c_str(),
                static_cast<int>(g.paper_section.size()), g.paper_section.data());
  }
  return 0;
}

// efd campus: run a sharded campus, optionally under a seeded fault-domain
// storm (DESIGN.md §15), and print a report containing ONLY fields that are
// deterministic for a given config — digest, per-board digests, packet and
// fault accounting, and the fault/recovery trace. The CI chaos leg runs
// this twice (EFD_SHARDS=1 vs 4) and diffs the whole output byte-for-byte.
int cmd_campus(int argc, char** argv) {
  testbed::CampusRunConfig cfg;
  cfg.campus.n_outlets = 200;
  cfg.n_shards = sim::ShardedSimulator::env_shards(1);
  std::int64_t ms = 200;
  bool storm = false;
  std::uint64_t storm_seed = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--outlets") == 0 && i + 1 < argc) {
      cfg.campus.n_outlets = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      cfg.n_shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.campus.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--ms") == 0 && i + 1 < argc) {
      ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--storm") == 0 && i + 1 < argc) {
      storm = true;
      storm_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      return usage();
    }
  }
  if (cfg.campus.n_outlets < 1 || cfg.campus.n_outlets > 1'000'000 ||
      cfg.n_shards < 1 || ms < 1 || ms > 600'000) {
    return usage();
  }
  cfg.duration = sim::milliseconds(ms);
  const grid::CampusTopology topo = grid::CampusTopology::generate(cfg.campus);
  if (storm) {
    fault::FaultPlan::CampusStormConfig sc;
    sc.n_boards = topo.n_boards();
    sc.n_links = static_cast<int>(topo.links().size());
    // Scale the storm window to the run so every fault both lands and
    // clears inside it regardless of --ms.
    sc.start = sim::Time{cfg.duration.ns() / 10};
    sc.horizon = sim::Time{(cfg.duration.ns() * 3) / 4};
    sc.min_duration = sim::Time{cfg.duration.ns() / 20};
    sc.max_duration = sim::Time{cfg.duration.ns() / 5};
    cfg.faults = fault::FaultPlan::random_campus_storm(sim::Rng{storm_seed}, sc);
  }
  const testbed::CampusResult r = testbed::run_campus(cfg);
  std::printf("campus outlets=%d boards=%d crossings=%d seed=%llu ms=%lld "
              "storm=%s\n",
              cfg.campus.n_outlets, topo.n_boards(),
              static_cast<int>(topo.links().size()),
              static_cast<unsigned long long>(cfg.campus.seed),
              static_cast<long long>(ms),
              storm ? std::to_string(storm_seed).c_str() : "none");
  std::printf("events=%llu delivered=%llu local=%llu remote=%llu "
              "boundary=%llu/%llu\n",
              static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.packets_local),
              static_cast<unsigned long long>(r.packets_remote),
              static_cast<unsigned long long>(r.boundary_delivered),
              static_cast<unsigned long long>(r.boundary_posted));
  std::printf("fault_events=%llu dead_drops=%llu partition_drops=%llu "
              "failovers=%llu failbacks=%llu\n",
              static_cast<unsigned long long>(r.fault_events),
              static_cast<unsigned long long>(r.dead_drops),
              static_cast<unsigned long long>(r.partition_drops),
              static_cast<unsigned long long>(r.failovers),
              static_cast<unsigned long long>(r.failbacks));
  std::printf("digest=%016llx\n", static_cast<unsigned long long>(r.digest));
  for (std::size_t b = 0; b < r.board_digests.size(); ++b) {
    std::printf("board %3zu digest=%016llx\n", b,
                static_cast<unsigned long long>(r.board_digests[b]));
  }
  if (!r.fault_trace.empty()) {
    std::printf("fault trace:\n%s", r.fault_trace.c_str());
  }
  return 0;
}

int cmd_proptest(std::uint64_t seed, int n) {
  const auto report = testkit::run_proptest(seed, n);
  std::printf("%s\n", report.summary().c_str());
  return report.ok() ? 0 : 1;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "--proptest" || cmd == "proptest") {
    if (argc < 4) return usage();
    const long long seed = std::atoll(argv[2]);
    const int n = std::atoi(argv[3]);
    if (seed < 0 || n <= 0 || n > 1000000) return usage();
    return cmd_proptest(static_cast<std::uint64_t>(seed), n);
  }
  const auto station_args = [&](int needed) {
    return argc >= 2 + needed;
  };
  if (cmd == "survey") {
    const bool night = argc > 2 && std::strcmp(argv[2], "--night") == 0;
    return cmd_survey(night);
  }
  if (cmd == "guidelines") return cmd_guidelines();
  if (cmd == "campus") return cmd_campus(argc, argv);
  if (cmd == "topology") {
    grid::CampusConfig cfg;
    int shards = sim::ShardedSimulator::env_shards(1);
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--outlets") == 0 && i + 1 < argc) {
        cfg.n_outlets = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
        shards = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else {
        return usage();
      }
    }
    if (cfg.n_outlets < 1 || cfg.n_outlets > 1'000'000 || shards < 1) {
      return usage();
    }
    const grid::CampusTopology topo = grid::CampusTopology::generate(cfg);
    std::fputs(topo.to_json(shards).c_str(), stdout);
    return 0;
  }
  if (!station_args(2)) return usage();
  const int a = std::atoi(argv[2]);
  const int b = std::atoi(argv[3]);
  if (a < 0 || a >= testbed::Testbed::kStations || b < 0 ||
      b >= testbed::Testbed::kStations || a == b) {
    return usage();
  }
  if (cmd == "rate") return cmd_rate(a, b);
  if (cmd == "stat") return cmd_stat(a, b);
  if (cmd == "route") return cmd_route(a, b);
  if (cmd == "trace" || cmd == "sniff") {
    const double seconds = argc > 4 ? std::atof(argv[4]) : 10.0;
    if (seconds <= 0 || seconds > 3600) return usage();
    return cmd == "trace" ? cmd_trace(a, b, seconds) : cmd_sniff(a, b, seconds);
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_metrics = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const int rc = dispatch(static_cast<int>(args.size()), args.data());
  if (dump_metrics) {
    std::fprintf(stderr, "%s\n", obs::snapshot_json().c_str());
  }
  return rc;
}

#!/usr/bin/env python3
"""Compare a BENCH_<figure>.json against a committed baseline.

Used by the CI bench-smoke job and locally after a perf change:

    tools/bench_compare.py BENCH_fig03.json bench/baselines/BENCH_fig03.json

Two kinds of checks:

  * Shape metrics (everything in the "metrics" array except the perf fields
    below) must match the baseline EXACTLY — the figure benches are
    deterministic for a fixed seed, so any drift is a correctness regression,
    not noise.
  * Perf fields — "wall_clock_s" and the "sim_events_per_sec" metric — may
    drift with the machine; the check fails only on a relative regression
    beyond --max-regress (default 0.25, the ">25%" CI gate). Improvements
    never fail.
  * Profile phases — when both documents embed a profiler tree
    (metrics_snapshot.profile), the top-level bench phases are diffed and
    shifts beyond --max-regress are printed as warnings, pointing at WHERE
    a wall-clock regression happened. Warn-only: phase timings are noisier
    than the wall clock they decompose. Skipped silently when either file
    lacks a profile.

A second input format is detected automatically: google-benchmark JSON
(`--benchmark_format=json` output with a top-level "benchmarks" array, as
produced by bench_micro_kernels). There the comparison is host-independent:
for every `kernel/<kernel>/<impl>/<n>` entry the script computes the SPEEDUP
of each SIMD impl over the scalar entry of the same run, and fails when a
current speedup falls more than --max-regress below the baseline speedup.
Entries present in the baseline but absent from the current run fail as a
tripwire (a kernel silently dropped from the bench would otherwise pass).
Both files must be the same format.

Exit status: 0 on pass, 1 on any failure, 2 on usage/IO errors.
"""

import argparse
import json
import sys

# Perf metrics: threshold-checked (higher is better unless listed in
# LOWER_IS_BETTER), everything else must be bit-equal to the baseline.
PERF_METRICS = {"sim_events_per_sec", "sim_events_dispatched"}
LOWER_IS_BETTER = {"wall_clock_s"}
# Machine-dependent run descriptors: recorded for provenance, never compared
# (a scalar-forced or non-AVX2 run legitimately differs from the baseline,
# as does the shard count a campus run was launched with).
MACHINE_METRICS = {"carrier_math_impl", "n_shards"}
# Warn-only metrics: compared and printed but never fail the gate. Per-shard
# load balance depends on host core count and scheduling, so a shift is a
# hint for the log reader, not a regression. fault_events tracks a bench's
# chaos profile (0 for fault-free benches; a drift means the fault plan
# changed) and mailbox_peak_occupancy depends on shard interleaving — both
# worth eyeballing, neither a correctness gate.
WARN_METRICS = {"shard_load_balance", "fault_events", "mailbox_peak_occupancy"}
# Exact-match exemptions: perf metrics plus anything machine-dependent.
NON_SHAPE_METRICS = PERF_METRICS | MACHINE_METRICS | WARN_METRICS


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def metric_map(doc, path):
    """Name -> value map of the doc's metrics array.

    Bench writers evolve: tolerate documents whose "metrics" is missing or
    malformed instead of tracebacking mid-CI. A structurally wrong document
    is a usage error (exit 2, like an unreadable file); individual entries
    missing "name"/"value" are skipped with a warning so one bad metric
    cannot mask the comparison of every other one.
    """
    metrics = doc.get("metrics", [])
    if not isinstance(metrics, list):
        print(f"bench_compare: {path}: 'metrics' must be an array, got "
              f"{type(metrics).__name__}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for i, m in enumerate(metrics):
        if not isinstance(m, dict) or "name" not in m:
            print(f"bench_compare: {path}: metrics[{i}] has no 'name'; skipped",
                  file=sys.stderr)
            continue
        if "value" not in m:
            print(f"bench_compare: {path}: metric '{m['name']}' has no 'value';"
                  " skipped", file=sys.stderr)
            continue
        out[m["name"]] = m["value"]
    return out


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def is_gbench(doc):
    return isinstance(doc.get("benchmarks"), list)


def kernel_times(doc, path):
    """(kernel, n) -> {impl: cpu_time} from a google-benchmark JSON.

    Accepts both plain runs (run_type "iteration") and aggregate runs, where
    the median aggregate is preferred (its name carries a "_median" suffix).
    Entries that are not kernel/<kernel>/<impl>/<n> benches are ignored, so
    the same file may hold unrelated benchmarks.
    """
    plain, median = {}, {}
    for i, b in enumerate(doc["benchmarks"]):
        if not isinstance(b, dict):
            print(f"bench_compare: {path}: benchmarks[{i}] is not an object;"
                  " skipped", file=sys.stderr)
            continue
        name = b.get("name", "")
        cpu = b.get("cpu_time")
        if not isinstance(name, str) or not is_number(cpu) or cpu <= 0:
            continue
        dest = plain
        if name.endswith("_median"):
            name, dest = name[: -len("_median")], median
        elif b.get("run_type") == "aggregate":
            continue  # mean/stddev/cv aggregates
        parts = name.split("/")
        if len(parts) != 4 or parts[0] != "kernel":
            continue
        _, kernel, impl, n = parts
        dest.setdefault((kernel, n), {})[impl] = cpu
    # Median aggregates win over per-repetition entries for the same key.
    out = dict(plain)
    for key, impls in median.items():
        out.setdefault(key, {}).update(impls)
    return out


def compare_kernels(cur, base, args):
    """Host-independent speedup comparison of two google-benchmark files."""
    cur_t = kernel_times(cur, args.current)
    base_t = kernel_times(base, args.baseline)
    failures = []
    for (kernel, n), base_impls in sorted(base_t.items()):
        if "scalar" not in base_impls:
            print(f"  --  kernel/{kernel}/{n}: baseline has no scalar entry")
            continue
        cur_impls = cur_t.get((kernel, n), {})
        if "scalar" not in cur_impls:
            failures.append(
                f"kernel/{kernel}/scalar/{n} missing from {args.current}")
            continue
        for impl, base_cpu in sorted(base_impls.items()):
            if impl == "scalar":
                continue
            label = f"kernel/{kernel}/{impl}/{n}"
            if impl not in cur_impls:
                failures.append(f"{label} missing from {args.current}")
                continue
            base_speedup = base_impls["scalar"] / base_cpu
            cur_speedup = cur_impls["scalar"] / cur_impls[impl]
            ratio = base_speedup / cur_speedup  # >1 means less speedup now
            status = "ok" if ratio <= 1.0 + args.max_regress else "FAIL"
            print(f"  {status:4s}{label:40s} speedup {cur_speedup:.2f}x vs "
                  f"baseline {base_speedup:.2f}x "
                  f"({(ratio - 1.0) * 100.0:+.1f}% vs allowance "
                  f"{args.max_regress * 100.0:.0f}%)")
            if status == "FAIL":
                failures.append(
                    f"'{label}' speedup dropped to {cur_speedup:.2f}x"
                    f" (baseline {base_speedup:.2f}x,"
                    f" > {args.max_regress * 100.0:.0f}% allowed)")
    if not base_t:
        print(f"bench_compare: {args.baseline}: no kernel/<k>/<impl>/<n>"
              " benchmarks found", file=sys.stderr)
        sys.exit(2)
    return failures


def profile_phases(doc):
    """name -> total_ns of the bench's top-level profiler phases.

    Figure benches nest their phases ("phase.setup", "phase.sweep", ...)
    directly under the reporter's root "bench" scope; this returns those
    children. None when the document carries no profile block (old baseline,
    compiled-out build) or the tree has no "bench" root.
    """
    profile = doc.get("metrics_snapshot", {}).get("profile")
    if not isinstance(profile, dict):
        return None
    for top in profile.get("root", {}).get("children", []):
        if top.get("name") == "bench":
            return {c["name"]: c["total_ns"] for c in top.get("children", [])
                    if isinstance(c.get("total_ns"), int)}
    return None


def warn_profile_diff(cur, base, max_regress):
    """Warn-only per-phase comparison of the embedded profiles.

    Phase timings answer "WHERE did the run get slower", which the
    wall-clock gate cannot; but they inherit all of its machine noise plus
    scheduling jitter, so a shifted phase is a hint for the human reading
    the CI log, never a failure. Silent when either document predates the
    profiler.
    """
    cur_p, base_p = profile_phases(cur), profile_phases(base)
    if cur_p is None or base_p is None:
        return
    for name, base_ns in sorted(base_p.items()):
        cur_ns = cur_p.get(name)
        if cur_ns is None:
            print(f"  warn profile phase '{name}' missing from current run")
            continue
        if base_ns <= 0:
            continue
        ratio = cur_ns / base_ns
        status = "ok" if ratio <= 1.0 + max_regress else "warn"
        print(f"  {status:4s}profile {name:24s} {cur_ns / 1e9:.3f}s vs baseline "
              f"{base_ns / 1e9:.3f}s ({(ratio - 1.0) * 100.0:+.1f}%, warn-only)")
    for name in sorted(set(cur_p) - set(base_p)):
        print(f"  warn profile phase '{name}' absent from baseline")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("current", help="freshly produced BENCH_<figure>.json")
    ap.add_argument("baseline", help="committed baseline json")
    ap.add_argument("--max-regress", type=float, default=0.25,
                    help="allowed relative perf regression (default 0.25)")
    ap.add_argument("--skip-perf", action="store_true",
                    help="only check shape metrics (for hosts with no "
                         "comparable baseline timing)")
    args = ap.parse_args()

    cur, base = load(args.current), load(args.baseline)
    if is_gbench(base) != is_gbench(cur):
        print("bench_compare: cannot compare a google-benchmark JSON with a"
              " BENCH_<figure>.json", file=sys.stderr)
        sys.exit(2)
    if is_gbench(base):
        failures = compare_kernels(cur, base, args)
        if failures:
            print(f"\nbench_compare: {len(failures)} failure(s):",
                  file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(f"\nbench_compare: {args.current} within budget of"
              f" {args.baseline}")
        return 0
    cur_m, base_m = metric_map(cur, args.current), metric_map(base, args.baseline)
    failures = []

    # --- shape: exact equality with the baseline --------------------------
    for name, want in sorted(base_m.items()):
        if name in NON_SHAPE_METRICS:
            continue
        if name not in cur_m:
            failures.append(f"shape metric '{name}' missing from {args.current}")
        elif cur_m[name] != want:
            failures.append(
                f"shape metric '{name}' drifted: {cur_m[name]!r} != baseline {want!r}")
        else:
            print(f"  ok  {name:32s} {want}")

    # --- warn-only: printed for the log reader, never a failure -----------
    for name in sorted(WARN_METRICS):
        got, want = cur_m.get(name), base_m.get(name)
        if not is_number(got) or not is_number(want):
            continue
        status = "ok" if got == want else "warn"
        drift = f" ({(got / want - 1.0) * 100.0:+.1f}%)" if want else ""
        print(f"  {status:4s}{name:32s} current {got:.6g} vs baseline "
              f"{want:.6g}{drift} (warn-only)")

    # --- perf: bounded regression -----------------------------------------
    perf_pairs = [("wall_clock_s", cur.get("wall_clock_s"), base.get("wall_clock_s"))]
    for name in sorted(PERF_METRICS):
        if name in base_m:
            perf_pairs.append((name, cur_m.get(name), base_m[name]))
    for name, got, want in perf_pairs:
        if args.skip_perf:
            print(f"  --  {name:32s} skipped (--skip-perf)")
            continue
        if not is_number(got) or not is_number(want) or want == 0:
            print(f"  --  {name:32s} no comparable baseline value")
            continue
        if name in LOWER_IS_BETTER:
            ratio = got / want            # >1 means slower
        else:
            ratio = want / got if got else float("inf")  # >1 means less throughput
        status = "ok" if ratio <= 1.0 + args.max_regress else "FAIL"
        print(f"  {status:4s}{name:32s} current {got:.6g} vs baseline {want:.6g} "
              f"({(ratio - 1.0) * 100.0:+.1f}% vs allowance {args.max_regress * 100.0:.0f}%)")
        if status == "FAIL":
            failures.append(
                f"perf metric '{name}' regressed {(ratio - 1.0) * 100.0:.1f}%"
                f" (> {args.max_regress * 100.0:.0f}% allowed)")

    # --- profile: per-phase attribution, warn-only ------------------------
    warn_profile_diff(cur, base, args.max_regress)

    if failures:
        print(f"\nbench_compare: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: {args.current} within budget of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

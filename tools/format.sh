#!/usr/bin/env bash
# Format (or, with --check, lint) every tracked C++ file with clang-format
# using the repo's .clang-format. CI's lint job runs `format.sh --check`.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "error: clang-format not found on PATH" >&2
  exit 1
fi

mapfile -t files < <(git ls-files '*.cpp' '*.hpp')
if [ "${#files[@]}" -eq 0 ]; then
  echo "no C++ files tracked" >&2
  exit 0
fi

if [ "${1:-}" = "--check" ]; then
  clang-format --dry-run -Werror "${files[@]}"
  echo "clang-format: ${#files[@]} files clean"
else
  clang-format -i "${files[@]}"
  echo "clang-format: formatted ${#files[@]} files"
fi
